#include "plan/operator_tree.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "plan/plan_tree.h"

namespace mrs {
namespace {

Catalog MakeCatalog(std::vector<int64_t> sizes) {
  Catalog catalog;
  for (size_t i = 0; i < sizes.size(); ++i) {
    Relation r;
    r.name = "R" + std::to_string(i);
    r.num_tuples = sizes[i];
    EXPECT_TRUE(catalog.AddRelation(std::move(r)).ok());
  }
  return catalog;
}

TEST(OperatorTreeTest, SingleScanPlan) {
  Catalog catalog = MakeCatalog({100});
  PlanTree plan(&catalog);
  ASSERT_TRUE(plan.AddLeaf(0).ok());
  ASSERT_TRUE(plan.Finalize().ok());
  auto tree = OperatorTree::FromPlan(plan);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_ops(), 1);
  const PhysicalOp& scan = tree->op(tree->root_op());
  EXPECT_EQ(scan.kind, OperatorKind::kScan);
  EXPECT_EQ(scan.input_tuples, 100);
  EXPECT_EQ(scan.output_tuples, 100);
  EXPECT_EQ(scan.consumer, -1);
  EXPECT_TRUE(scan.data_inputs.empty());
}

TEST(OperatorTreeTest, RequiresFinalizedPlan) {
  Catalog catalog = MakeCatalog({100});
  PlanTree plan(&catalog);
  ASSERT_TRUE(plan.AddLeaf(0).ok());
  EXPECT_EQ(OperatorTree::FromPlan(plan).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(OperatorTreeTest, JoinExpandsToScansBuildProbe) {
  Catalog catalog = MakeCatalog({1000, 300});
  PlanTree plan(&catalog);
  int outer = plan.AddLeaf(0).value();
  int inner = plan.AddLeaf(1).value();
  plan.AddJoin(outer, inner).value();
  ASSERT_TRUE(plan.Finalize().ok());
  auto tree = OperatorTree::FromPlan(plan);
  ASSERT_TRUE(tree.ok());

  // 1 join over 2 relations: 3*1 + 1 = 4 operators.
  EXPECT_EQ(tree->num_ops(), 4);
  EXPECT_EQ(tree->OpsOfKind(OperatorKind::kScan).size(), 2u);
  EXPECT_EQ(tree->OpsOfKind(OperatorKind::kBuild).size(), 1u);
  EXPECT_EQ(tree->OpsOfKind(OperatorKind::kProbe).size(), 1u);

  const PhysicalOp& probe = tree->op(tree->root_op());
  EXPECT_EQ(probe.kind, OperatorKind::kProbe);
  EXPECT_EQ(probe.input_tuples, 1000);   // outer stream
  EXPECT_EQ(probe.output_tuples, 1000);  // key join result
  ASSERT_GE(probe.blocking_input, 0);

  const PhysicalOp& build = tree->op(probe.blocking_input);
  EXPECT_EQ(build.kind, OperatorKind::kBuild);
  EXPECT_EQ(build.input_tuples, 300);  // inner stream
  EXPECT_EQ(build.output_tuples, 0);   // hash table stays local
  EXPECT_EQ(build.consumer, -1);

  // The build's data input is the inner scan; the probe's is the outer.
  ASSERT_EQ(build.data_inputs.size(), 1u);
  const PhysicalOp& inner_scan = tree->op(build.data_inputs[0]);
  EXPECT_EQ(inner_scan.kind, OperatorKind::kScan);
  EXPECT_EQ(inner_scan.output_tuples, 300);
  EXPECT_EQ(inner_scan.consumer, build.id);

  ASSERT_EQ(probe.data_inputs.size(), 1u);
  const PhysicalOp& outer_scan = tree->op(probe.data_inputs[0]);
  EXPECT_EQ(outer_scan.output_tuples, 1000);
  EXPECT_EQ(outer_scan.consumer, probe.id);
}

TEST(OperatorTreeTest, OperatorCountIs3JPlus1) {
  for (int joins : {2, 3, 5}) {
    Catalog catalog = MakeCatalog(
        std::vector<int64_t>(static_cast<size_t>(joins + 1), 500));
    PlanTree plan(&catalog);
    int cur = plan.AddLeaf(0).value();
    for (int i = 1; i <= joins; ++i) {
      cur = plan.AddJoin(cur, plan.AddLeaf(i).value()).value();
    }
    ASSERT_TRUE(plan.Finalize().ok());
    auto tree = OperatorTree::FromPlan(plan);
    ASSERT_TRUE(tree.ok());
    EXPECT_EQ(tree->num_ops(), 3 * joins + 1);
  }
}

TEST(OperatorTreeTest, ByteAccountingUsesLayout) {
  Catalog catalog = MakeCatalog({10, 20});
  PlanTree plan(&catalog);
  plan.AddJoin(plan.AddLeaf(0).value(), plan.AddLeaf(1).value()).value();
  ASSERT_TRUE(plan.Finalize().ok());
  auto tree = OperatorTree::FromPlan(plan);
  ASSERT_TRUE(tree.ok());
  const PhysicalOp& probe = tree->op(tree->root_op());
  EXPECT_EQ(probe.input_bytes(), 10 * 128);
  EXPECT_EQ(probe.output_bytes(), 20 * 128);
}

TEST(OperatorTreeTest, BuildForProbe) {
  Catalog catalog = MakeCatalog({10, 20});
  PlanTree plan(&catalog);
  plan.AddJoin(plan.AddLeaf(0).value(), plan.AddLeaf(1).value()).value();
  ASSERT_TRUE(plan.Finalize().ok());
  auto tree = OperatorTree::FromPlan(plan);
  ASSERT_TRUE(tree.ok());
  const int probe = tree->root_op();
  auto build = tree->BuildForProbe(probe);
  ASSERT_TRUE(build.ok());
  EXPECT_EQ(tree->op(build.value()).kind, OperatorKind::kBuild);
  // Error paths.
  EXPECT_EQ(tree->BuildForProbe(999).status().code(), StatusCode::kOutOfRange);
  const int scan = tree->op(probe).data_inputs[0];
  EXPECT_EQ(tree->BuildForProbe(scan).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OperatorTreeTest, KindNames) {
  EXPECT_EQ(OperatorKindToString(OperatorKind::kScan), "scan");
  EXPECT_EQ(OperatorKindToString(OperatorKind::kBuild), "build");
  EXPECT_EQ(OperatorKindToString(OperatorKind::kProbe), "probe");
}

}  // namespace
}  // namespace mrs
