#include "plan/plan_tree.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace mrs {
namespace {

Catalog MakeCatalog(std::vector<int64_t> sizes) {
  Catalog catalog;
  for (size_t i = 0; i < sizes.size(); ++i) {
    Relation r;
    r.name = "R" + std::to_string(i);
    r.num_tuples = sizes[i];
    EXPECT_TRUE(catalog.AddRelation(std::move(r)).ok());
  }
  return catalog;
}

TEST(PlanTreeTest, SingleLeafPlan) {
  Catalog catalog = MakeCatalog({100});
  PlanTree plan(&catalog);
  auto leaf = plan.AddLeaf(0);
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(plan.Finalize().ok());
  EXPECT_EQ(plan.root(), leaf.value());
  EXPECT_EQ(plan.num_joins(), 0);
  EXPECT_EQ(plan.Height(), 0);
  EXPECT_EQ(plan.ToString(), "R0");
}

TEST(PlanTreeTest, TwoWayJoinSizing) {
  Catalog catalog = MakeCatalog({1000, 300});
  PlanTree plan(&catalog);
  int l0 = plan.AddLeaf(0).value();
  int l1 = plan.AddLeaf(1).value();
  auto join = plan.AddJoin(/*outer=*/l0, /*inner=*/l1);
  ASSERT_TRUE(join.ok());
  ASSERT_TRUE(plan.Finalize().ok());
  const PlanNode& root = plan.node(plan.root());
  EXPECT_FALSE(root.is_leaf);
  // Key join: |result| = max(|L|, |R|).
  EXPECT_EQ(root.output.num_tuples, 1000);
  EXPECT_EQ(root.outer_child, l0);
  EXPECT_EQ(root.inner_child, l1);
  EXPECT_EQ(plan.Height(), 1);
}

TEST(PlanTreeTest, BushySizingPropagates) {
  Catalog catalog = MakeCatalog({10, 20, 30, 40});
  PlanTree plan(&catalog);
  int a = plan.AddLeaf(0).value();
  int b = plan.AddLeaf(1).value();
  int c = plan.AddLeaf(2).value();
  int d = plan.AddLeaf(3).value();
  int j0 = plan.AddJoin(a, b).value();  // 20
  int j1 = plan.AddJoin(c, d).value();  // 40
  int j2 = plan.AddJoin(j0, j1).value();  // 40
  ASSERT_TRUE(plan.Finalize().ok());
  EXPECT_EQ(plan.node(j0).output.num_tuples, 20);
  EXPECT_EQ(plan.node(j1).output.num_tuples, 40);
  EXPECT_EQ(plan.node(j2).output.num_tuples, 40);
  EXPECT_EQ(plan.num_joins(), 3);
  EXPECT_EQ(plan.num_leaves(), 4);
  EXPECT_EQ(plan.Height(), 2);
}

TEST(PlanTreeTest, RightDeepHeight) {
  Catalog catalog = MakeCatalog({10, 10, 10, 10});
  PlanTree plan(&catalog);
  int cur = plan.AddLeaf(0).value();
  for (int i = 1; i < 4; ++i) {
    cur = plan.AddJoin(plan.AddLeaf(i).value(), cur).value();
  }
  ASSERT_TRUE(plan.Finalize().ok());
  EXPECT_EQ(plan.Height(), 3);
}

TEST(PlanTreeTest, RejectsConsumingNodeTwice) {
  Catalog catalog = MakeCatalog({10, 10, 10});
  PlanTree plan(&catalog);
  int a = plan.AddLeaf(0).value();
  int b = plan.AddLeaf(1).value();
  int c = plan.AddLeaf(2).value();
  ASSERT_TRUE(plan.AddJoin(a, b).ok());
  EXPECT_EQ(plan.AddJoin(a, c).status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanTreeTest, RejectsSelfJoinNode) {
  Catalog catalog = MakeCatalog({10});
  PlanTree plan(&catalog);
  int a = plan.AddLeaf(0).value();
  EXPECT_EQ(plan.AddJoin(a, a).status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanTreeTest, RejectsUnknownRelation) {
  Catalog catalog = MakeCatalog({10});
  PlanTree plan(&catalog);
  EXPECT_EQ(plan.AddLeaf(3).status().code(), StatusCode::kNotFound);
}

TEST(PlanTreeTest, FinalizeRejectsForest) {
  Catalog catalog = MakeCatalog({10, 10});
  PlanTree plan(&catalog);
  ASSERT_TRUE(plan.AddLeaf(0).ok());
  ASSERT_TRUE(plan.AddLeaf(1).ok());
  EXPECT_EQ(plan.Finalize().code(), StatusCode::kFailedPrecondition);
}

TEST(PlanTreeTest, FinalizeRejectsEmpty) {
  Catalog catalog = MakeCatalog({});
  PlanTree plan(&catalog);
  EXPECT_EQ(plan.Finalize().code(), StatusCode::kFailedPrecondition);
}

TEST(PlanTreeTest, NoMutationAfterFinalize) {
  Catalog catalog = MakeCatalog({10});
  PlanTree plan(&catalog);
  ASSERT_TRUE(plan.AddLeaf(0).ok());
  ASSERT_TRUE(plan.Finalize().ok());
  EXPECT_EQ(plan.AddLeaf(0).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(plan.Finalize().ok());  // idempotent
}

TEST(PlanTreeTest, ToStringNested) {
  Catalog catalog = MakeCatalog({1, 2, 3});
  PlanTree plan(&catalog);
  int a = plan.AddLeaf(0).value();
  int b = plan.AddLeaf(1).value();
  int c = plan.AddLeaf(2).value();
  int j0 = plan.AddJoin(a, b).value();
  plan.AddJoin(j0, c).value();
  ASSERT_TRUE(plan.Finalize().ok());
  EXPECT_EQ(plan.ToString(), "((R0 JOIN R1) JOIN R2)");
}

}  // namespace
}  // namespace mrs
