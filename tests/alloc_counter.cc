#include "alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

// The sanitizers replace the global allocator themselves; interposing on
// top of them would either conflict or bypass their bookkeeping, so the
// counter is compiled out and reports unavailable.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MRS_ALLOC_COUNTER_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define MRS_ALLOC_COUNTER_DISABLED 1
#endif
#endif

namespace mrs {
namespace testing_util {
namespace {

std::atomic<uint64_t> g_alloc_count{0};

}  // namespace

bool AllocCountingAvailable() {
#ifdef MRS_ALLOC_COUNTER_DISABLED
  return false;
#else
  return true;
#endif
}

uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

namespace alloc_counter_internal {

void Count() { g_alloc_count.fetch_add(1, std::memory_order_relaxed); }

}  // namespace alloc_counter_internal
}  // namespace testing_util
}  // namespace mrs

#ifndef MRS_ALLOC_COUNTER_DISABLED

namespace {

void* CountedAlloc(std::size_t size) {
  mrs::testing_util::alloc_counter_internal::Count();
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  mrs::testing_util::alloc_counter_internal::Count();
  if (size == 0) size = align;
  void* p = nullptr;
  if (posix_memalign(&p, align, size) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  mrs::testing_util::alloc_counter_internal::Count();
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  mrs::testing_util::alloc_counter_internal::Count();
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // !MRS_ALLOC_COUNTER_DISABLED
