#include "resource/work_vector.h"

#include <gtest/gtest.h>

namespace mrs {
namespace {

TEST(WorkVectorTest, ZeroConstruction) {
  WorkVector w(3);
  EXPECT_EQ(w.dim(), 3u);
  EXPECT_DOUBLE_EQ(w.Length(), 0.0);
  EXPECT_DOUBLE_EQ(w.Total(), 0.0);
  EXPECT_TRUE(w.IsNonNegative());
}

TEST(WorkVectorTest, InitializerList) {
  WorkVector w = {10.0, 15.0, 5.0};
  EXPECT_EQ(w.dim(), 3u);
  EXPECT_DOUBLE_EQ(w[1], 15.0);
  EXPECT_DOUBLE_EQ(w.Length(), 15.0);
  EXPECT_DOUBLE_EQ(w.Total(), 30.0);
}

TEST(WorkVectorTest, EmptyVector) {
  WorkVector w;
  EXPECT_TRUE(w.empty());
  EXPECT_DOUBLE_EQ(w.Length(), 0.0);
  EXPECT_DOUBLE_EQ(w.Total(), 0.0);
}

TEST(WorkVectorTest, Arithmetic) {
  WorkVector a = {1.0, 2.0};
  WorkVector b = {3.0, 4.0};
  EXPECT_EQ(a + b, WorkVector({4.0, 6.0}));
  EXPECT_EQ(b - a, WorkVector({2.0, 2.0}));
  EXPECT_EQ(a * 2.0, WorkVector({2.0, 4.0}));
  EXPECT_EQ(2.0 * a, WorkVector({2.0, 4.0}));
  a += b;
  EXPECT_EQ(a, WorkVector({4.0, 6.0}));
  a -= b;
  EXPECT_EQ(a, WorkVector({1.0, 2.0}));
  a *= 3.0;
  EXPECT_EQ(a, WorkVector({3.0, 6.0}));
}

TEST(WorkVectorTest, IsNonNegative) {
  EXPECT_TRUE(WorkVector({0.0, 1.0}).IsNonNegative());
  EXPECT_FALSE(WorkVector({0.0, -1e-9}).IsNonNegative());
}

TEST(WorkVectorTest, DominatedBy) {
  WorkVector small = {1.0, 2.0};
  WorkVector big = {1.0, 3.0};
  EXPECT_TRUE(small.DominatedBy(big));
  EXPECT_TRUE(small.DominatedBy(small));
  EXPECT_FALSE(big.DominatedBy(small));
  // Incomparable vectors dominate in neither direction.
  WorkVector other = {2.0, 1.0};
  EXPECT_FALSE(small.DominatedBy(other));
  EXPECT_FALSE(other.DominatedBy(small));
}

TEST(WorkVectorTest, SetLengthMatchesPaperDefinition) {
  // l(S) = max component of the vector sum (Table 1).
  std::vector<WorkVector> s = {{10.0, 15.0}, {10.0, 5.0}};
  EXPECT_DOUBLE_EQ(SetLength(s), 20.0);
  std::vector<WorkVector> t = {{10.0, 15.0}, {5.0, 10.0}};
  EXPECT_DOUBLE_EQ(SetLength(t), 25.0);
  EXPECT_DOUBLE_EQ(SetLength({}), 0.0);
}

TEST(WorkVectorTest, SumVectors) {
  std::vector<WorkVector> s = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(SumVectors(s), WorkVector({9.0, 12.0}));
  EXPECT_TRUE(SumVectors({}).empty());
}

TEST(WorkVectorTest, ToString) {
  EXPECT_EQ(WorkVector({1.0, 2.5}).ToString(), "[1.000, 2.500]");
}

class WorkVectorDimTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkVectorDimTest, LengthNeverExceedsTotalForNonNegative) {
  const size_t d = GetParam();
  WorkVector w(d);
  for (size_t i = 0; i < d; ++i) w[i] = static_cast<double>(i + 1) * 1.5;
  EXPECT_LE(w.Length(), w.Total());
  EXPECT_DOUBLE_EQ(w.Length(), static_cast<double>(d) * 1.5);
  EXPECT_DOUBLE_EQ(w.Total(), 1.5 * static_cast<double>(d * (d + 1)) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Dims, WorkVectorDimTest,
                         ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace mrs
