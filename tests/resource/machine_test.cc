#include "resource/machine.h"

#include <gtest/gtest.h>

namespace mrs {
namespace {

TEST(MachineConfigTest, DefaultValid) {
  MachineConfig config;
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.num_sites, 16);
  EXPECT_EQ(config.dims, 3);
  EXPECT_EQ(config.resource_names.size(), 3u);
}

TEST(MachineConfigTest, RejectsNonPositive) {
  MachineConfig config;
  config.num_sites = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.num_sites = 4;
  config.dims = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(MachineConfigTest, PadsResourceNames) {
  MachineConfig config;
  config.dims = 5;
  ASSERT_TRUE(config.Validate().ok());
  ASSERT_EQ(config.resource_names.size(), 5u);
  EXPECT_EQ(config.resource_names[0], "cpu");
  EXPECT_EQ(config.resource_names[3], "r3");
}

TEST(MachineConfigTest, TruncatesResourceNames) {
  MachineConfig config;
  config.dims = 2;
  ASSERT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.resource_names.size(), 2u);
}

TEST(MachineConfigTest, ToStringSummarizes) {
  MachineConfig config;
  config.num_sites = 80;
  ASSERT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.ToString(), "P=80 sites x d=3 (cpu,disk,net)");
}

TEST(MachineConfigTest, DimensionConstantsLayout) {
  EXPECT_EQ(kCpuDim, 0u);
  EXPECT_EQ(kDiskDim, 1u);
  EXPECT_EQ(kNetDim, 2u);
  EXPECT_EQ(kDefaultDims, 3u);
}

}  // namespace
}  // namespace mrs
