#include "resource/usage_model.h"

#include <gtest/gtest.h>

namespace mrs {
namespace {

TEST(OverlapUsageModelTest, PerfectOverlapIsMax) {
  OverlapUsageModel usage(1.0);
  EXPECT_DOUBLE_EQ(usage.SequentialTime({10.0, 15.0, 5.0}), 15.0);
}

TEST(OverlapUsageModelTest, ZeroOverlapIsSum) {
  OverlapUsageModel usage(0.0);
  EXPECT_DOUBLE_EQ(usage.SequentialTime({10.0, 15.0, 5.0}), 30.0);
}

TEST(OverlapUsageModelTest, ConvexCombination) {
  OverlapUsageModel usage(0.4);
  // 0.4*15 + 0.6*30 = 24.
  EXPECT_DOUBLE_EQ(usage.SequentialTime({10.0, 15.0, 5.0}), 24.0);
}

TEST(OverlapUsageModelTest, EpsilonClamped) {
  EXPECT_DOUBLE_EQ(OverlapUsageModel(-0.5).epsilon(), 0.0);
  EXPECT_DOUBLE_EQ(OverlapUsageModel(1.5).epsilon(), 1.0);
}

TEST(OverlapUsageModelTest, BoundsHoldForAllEpsilon) {
  const WorkVector w = {8.0, 3.0, 9.0};
  for (double eps = 0.0; eps <= 1.0; eps += 0.1) {
    OverlapUsageModel usage(eps);
    const double t = usage.SequentialTime(w);
    EXPECT_TRUE(SequentialTimeWithinBounds(w, t));
    EXPECT_GE(t, w.Length());
    EXPECT_LE(t, w.Total());
  }
}

TEST(OverlapUsageModelTest, SiteTimePaperExampleSqueeze) {
  // Paper §5.2.2: (T1,W1)=(22,[10,15]) and (T2,W2)=(10,[10,5]) at one
  // site: total [20,20] squeezes into T1 = 22. The example's T values
  // correspond to eps such that T(W1)=22: 22 = eps*15 + (1-eps)*25 -> eps
  // = 0.3.
  OverlapUsageModel usage(0.3);
  EXPECT_NEAR(usage.SequentialTime({10.0, 15.0}), 22.0, 1e-12);
  EXPECT_NEAR(usage.SequentialTime({10.0, 5.0}), 10.0 * 0.3 + 15.0 * 0.7,
              1e-12);
  const double site = usage.SiteTime({{10.0, 15.0}, {10.0, 5.0}});
  EXPECT_NEAR(site, 22.0, 1e-12);
}

TEST(OverlapUsageModelTest, SiteTimePaperExampleCongested) {
  // Paper §5.2.2 second case: W1=[10,15] with W3=[5,10]: the second
  // resource is congested, T_site = l({W1,W3}) = 25 > max T_seq.
  OverlapUsageModel usage(0.3);
  const double site = usage.SiteTime({{10.0, 15.0}, {5.0, 10.0}});
  EXPECT_NEAR(site, 25.0, 1e-12);
}

TEST(OverlapUsageModelTest, SiteTimeEmpty) {
  OverlapUsageModel usage(0.5);
  EXPECT_DOUBLE_EQ(usage.SiteTime({}), 0.0);
}

TEST(OverlapUsageModelTest, SiteTimeSingleCloneIsItsSequentialTime) {
  OverlapUsageModel usage(0.7);
  const WorkVector w = {4.0, 6.0};
  EXPECT_DOUBLE_EQ(usage.SiteTime({w}), usage.SequentialTime(w));
}

TEST(SequentialTimeWithinBoundsTest, DetectsViolations) {
  const WorkVector w = {10.0, 15.0};
  EXPECT_FALSE(SequentialTimeWithinBounds(w, 14.0));  // below max
  EXPECT_FALSE(SequentialTimeWithinBounds(w, 26.0));  // above sum
  EXPECT_TRUE(SequentialTimeWithinBounds(w, 15.0));
  EXPECT_TRUE(SequentialTimeWithinBounds(w, 25.0));
}

/// Property sweep: SiteTime is monotone under adding clones and never less
/// than any member's T_seq.
class SiteTimePropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SiteTimePropertyTest, MonotoneAndLowerBounded) {
  OverlapUsageModel usage(GetParam());
  std::vector<WorkVector> set;
  double prev = 0.0;
  for (int i = 1; i <= 6; ++i) {
    set.push_back({static_cast<double>(i), 7.0 - i, 2.0 * i});
    const double t = usage.SiteTime(set);
    EXPECT_GE(t, prev);
    for (const auto& w : set) {
      EXPECT_GE(t + 1e-12, usage.SequentialTime(w));
    }
    EXPECT_GE(t + 1e-12, SetLength(set));
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Overlap, SiteTimePropertyTest,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7, 1.0));

}  // namespace
}  // namespace mrs
