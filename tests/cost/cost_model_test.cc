#include "cost/cost_model.h"

#include <memory>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "plan/plan_tree.h"
#include "resource/machine.h"

namespace mrs {
namespace {

// One join: outer R0 (1000 tuples) probe side, inner R1 (1000 tuples)
// build side. All numbers below are hand-derived from Table 2 defaults:
//   pages(1000) = 25, read cpu = 25*5000 + 1000*300 = 425000 instr = 425ms
//   disk = 25 * 20ms = 500ms, bytes(1000) = 128000.
class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation r0;
    r0.name = "R0";
    r0.num_tuples = 1000;
    Relation r1;
    r1.name = "R1";
    r1.num_tuples = 1000;
    ASSERT_TRUE(catalog_.AddRelation(r0).ok());
    ASSERT_TRUE(catalog_.AddRelation(r1).ok());
    plan_ = std::make_unique<PlanTree>(&catalog_);
    plan_->AddJoin(plan_->AddLeaf(0).value(), plan_->AddLeaf(1).value())
        .value();
    ASSERT_TRUE(plan_->Finalize().ok());
    auto tree = OperatorTree::FromPlan(*plan_);
    ASSERT_TRUE(tree.ok());
    ops_ = std::make_unique<OperatorTree>(std::move(tree).value());
  }

  const PhysicalOp& OpOfKind(OperatorKind kind) {
    return ops_->op(ops_->OpsOfKind(kind).front());
  }

  Catalog catalog_;
  std::unique_ptr<PlanTree> plan_;
  std::unique_ptr<OperatorTree> ops_;
  CostModel model_{CostParams{}, 3};
};

TEST_F(CostModelTest, ScanCost) {
  // The inner scan feeds the build: it ships its output.
  const PhysicalOp& probe = ops_->op(ops_->root_op());
  const PhysicalOp& outer_scan = ops_->op(probe.data_inputs[0]);
  auto cost = model_.Cost(outer_scan);
  ASSERT_TRUE(cost.ok());
  EXPECT_NEAR(cost->processing[kCpuDim], 425.0, 1e-9);
  EXPECT_NEAR(cost->processing[kDiskDim], 500.0, 1e-9);
  EXPECT_NEAR(cost->processing[kNetDim], 0.0, 1e-9);  // comm not in W_p
  EXPECT_NEAR(cost->data_bytes, 128000.0, 1e-9);
  EXPECT_NEAR(cost->ProcessingArea(), 925.0, 1e-9);
}

TEST_F(CostModelTest, RootProbeShipsNoOutput) {
  const PhysicalOp& probe = ops_->op(ops_->root_op());
  auto cost = model_.Cost(probe);
  ASSERT_TRUE(cost.ok());
  // probe cpu: 1000 * (300 extract + 200 probe) = 500000 instr.
  EXPECT_NEAR(cost->processing[kCpuDim], 500.0, 1e-9);
  EXPECT_NEAR(cost->processing[kDiskDim], 0.0, 1e-9);
  // D: receives the outer stream only (it is the plan root).
  EXPECT_NEAR(cost->data_bytes, 128000.0, 1e-9);
}

TEST_F(CostModelTest, BuildCost) {
  const PhysicalOp& build = OpOfKind(OperatorKind::kBuild);
  auto cost = model_.Cost(build);
  ASSERT_TRUE(cost.ok());
  // 1000 * (300 extract + 100 hash) instr.
  EXPECT_NEAR(cost->processing[kCpuDim], 400.0, 1e-9);
  EXPECT_NEAR(cost->processing[kDiskDim], 0.0, 1e-9);   // in-memory (A1)
  EXPECT_NEAR(cost->data_bytes, 128000.0, 1e-9);        // receives inner
}

TEST_F(CostModelTest, CostAllIndexedByOpId) {
  auto costs = model_.CostAll(*ops_);
  ASSERT_TRUE(costs.ok());
  ASSERT_EQ(static_cast<int>(costs->size()), ops_->num_ops());
  for (int i = 0; i < ops_->num_ops(); ++i) {
    EXPECT_EQ((*costs)[static_cast<size_t>(i)].op_id, i);
    EXPECT_EQ((*costs)[static_cast<size_t>(i)].kind, ops_->op(i).kind);
    EXPECT_TRUE((*costs)[static_cast<size_t>(i)].processing.IsNonNegative());
  }
}

TEST_F(CostModelTest, ExtraDimensionsStayZero) {
  CostModel wide(CostParams{}, 5);
  const PhysicalOp& probe = ops_->op(ops_->root_op());
  auto cost = wide.Cost(probe);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(cost->processing.dim(), 5u);
  EXPECT_DOUBLE_EQ(cost->processing[3], 0.0);
  EXPECT_DOUBLE_EQ(cost->processing[4], 0.0);
}

TEST(CostParamsTest, DefaultsMatchTable2) {
  CostParams p;
  EXPECT_DOUBLE_EQ(p.cpu_mips, 1.0);
  EXPECT_DOUBLE_EQ(p.disk_ms_per_page, 20.0);
  EXPECT_DOUBLE_EQ(p.startup_ms_per_site, 15.0);
  EXPECT_DOUBLE_EQ(p.net_ms_per_byte, 0.0006);
  EXPECT_EQ(p.tuple_bytes, 128);
  EXPECT_EQ(p.tuples_per_page, 40);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(CostParamsTest, Conversions) {
  CostParams p;
  EXPECT_DOUBLE_EQ(p.InstrToMs(5000.0), 5.0);
  EXPECT_DOUBLE_EQ(p.TransferMs(100000.0), 60.0);
  // W_c(op, N) = alpha*N + beta*D.
  EXPECT_DOUBLE_EQ(p.CommunicationArea(4, 100000.0), 4 * 15.0 + 60.0);
}

TEST(CostParamsTest, ValidationCatchesBadValues) {
  CostParams p;
  p.cpu_mips = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = CostParams{};
  p.startup_ms_per_site = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = CostParams{};
  p.net_ms_per_byte = -1.0;
  EXPECT_FALSE(p.Validate().ok());
  p = CostParams{};
  p.instr_probe_hash = -5.0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(CostParamsTest, ToStringMentionsKeyNumbers) {
  const std::string s = CostParams{}.ToString();
  EXPECT_NE(s.find("Table 2"), std::string::npos);
  EXPECT_NE(s.find("15.0 ms/site"), std::string::npos);
}

}  // namespace
}  // namespace mrs
