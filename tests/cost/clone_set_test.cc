// CloneSet: uniform-clone compression semantics (DESIGN.md §4f) — the
// compressed {coordinator, base, degree} form must be observationally
// identical to the expanded vector of clones for every consumer, and
// mutation must expand (copy-on-write) without disturbing other clones.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/exhaustive.h"
#include "core/operator_schedule.h"
#include "core/preemptability.h"
#include "core/schedule.h"
#include "cost/clone_set.h"
#include "cost/parallelize.h"
#include "exec/fluid_simulator.h"
#include "resource/usage_model.h"
#include "test_util.h"
#include "workload/skew.h"

namespace mrs {
namespace {

using testing_util::MakeOp;

CloneSet SampleUniform(int degree) {
  WorkVector base({10.0, 6.0, 2.0});
  WorkVector coordinator({14.0, 6.0, 6.0});
  return CloneSet::Uniform(coordinator, base, degree);
}

TEST(CloneSetTest, UniformExposesIndexedReads) {
  CloneSet set = SampleUniform(5);
  EXPECT_TRUE(set.uniform());
  EXPECT_EQ(set.size(), 5u);
  EXPECT_FALSE(set.empty());
  EXPECT_EQ(set[0], WorkVector({14.0, 6.0, 6.0}));
  EXPECT_EQ(set.front(), set[0]);
  for (size_t k = 1; k < set.size(); ++k) {
    EXPECT_EQ(set[k], WorkVector({10.0, 6.0, 2.0}));
  }
}

TEST(CloneSetTest, IterationMatchesExpandedForm) {
  CloneSet set = SampleUniform(4);
  CloneSet expanded = set;
  expanded.Materialize();
  EXPECT_FALSE(expanded.uniform());
  ASSERT_EQ(expanded.size(), 4u);
  size_t k = 0;
  for (const WorkVector& w : set) {
    EXPECT_EQ(w, expanded[k]) << "clone " << k;
    ++k;
  }
  EXPECT_EQ(k, 4u);
  EXPECT_EQ(set, expanded);
}

TEST(CloneSetTest, SumIsBitIdenticalToExpandedSum) {
  CloneSet set = SampleUniform(7);
  CloneSet expanded = set;
  const WorkVector sum = set.Sum();
  const WorkVector expanded_sum = SumVectors(expanded.Materialized());
  ASSERT_EQ(sum.dim(), expanded_sum.dim());
  for (size_t i = 0; i < sum.dim(); ++i) {
    // Exact equality: Sum accumulates in index order, like SumVectors.
    EXPECT_EQ(sum[i], expanded_sum[i]) << "component " << i;
  }
}

TEST(CloneSetTest, MutableExpandsAndWritesOneClone) {
  CloneSet set = SampleUniform(4);
  set.Mutable(2) = WorkVector({99.0, 0.0, 0.0});
  EXPECT_FALSE(set.uniform());
  EXPECT_EQ(set.size(), 4u);
  EXPECT_EQ(set[0], WorkVector({14.0, 6.0, 6.0}));
  EXPECT_EQ(set[1], WorkVector({10.0, 6.0, 2.0}));
  EXPECT_EQ(set[2], WorkVector({99.0, 0.0, 0.0}));
  EXPECT_EQ(set[3], WorkVector({10.0, 6.0, 2.0}));
}

TEST(CloneSetTest, PushBackExpandsFirst) {
  CloneSet set = SampleUniform(2);
  set.push_back(WorkVector({1.0, 2.0, 3.0}));
  EXPECT_FALSE(set.uniform());
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[2], WorkVector({1.0, 2.0, 3.0}));
}

TEST(CloneSetTest, VectorAndInitializerListConstruction) {
  std::vector<WorkVector> clones = {WorkVector({1.0}), WorkVector({2.0})};
  CloneSet from_vector(clones);
  CloneSet from_list = {WorkVector({1.0}), WorkVector({2.0})};
  EXPECT_FALSE(from_vector.uniform());
  EXPECT_EQ(from_vector, from_list);
  EXPECT_NE(from_vector, CloneSet({WorkVector({3.0}), WorkVector({2.0})}));
}

TEST(CloneSetTest, SkewedClonesBecomeDistinctVectors) {
  const OverlapUsageModel usage(0.5);
  const CostParams params;
  OperatorCost cost;
  cost.op_id = 1;
  cost.processing = WorkVector({200.0, 150.0, 10.0});
  cost.data_bytes = 40000.0;
  auto op = ParallelizeAtDegree(cost, params, usage, 6, 8);
  ASSERT_TRUE(op.ok());
  ASSERT_TRUE(op->clones.uniform());

  SkewParams skew;
  skew.theta = 0.8;
  Rng rng(1234);
  const ParallelizedOp skewed = ApplySkew(*op, skew, usage, &rng);
  EXPECT_FALSE(skewed.clones.uniform())
      << "skew must expand the uniform set";
  // Zipf weights are all distinct, so (at least) two non-coordinator
  // clones must now differ — the uniform invariant is really broken.
  bool distinct = false;
  for (size_t k = 2; k < skewed.clones.size(); ++k) {
    if (skewed.clones[k] != skewed.clones[1]) distinct = true;
  }
  EXPECT_TRUE(distinct);
  // The source set stays compressed: ApplySkew reads through the const
  // indexed API and only the copy expands.
  EXPECT_TRUE(op->clones.uniform());
}

/// An op list whose clone sets are all uniform (the production path).
std::vector<ParallelizedOp> UniformOpMix(const OverlapUsageModel& usage,
                                         int num_sites) {
  const CostParams params;
  std::vector<ParallelizedOp> ops;
  for (int i = 0; i < 9; ++i) {
    OperatorCost cost;
    cost.op_id = i;
    cost.processing = WorkVector(
        {150.0 + 40.0 * (i % 4), 100.0 + 25.0 * (i % 3), 5.0 + i});
    cost.data_bytes = 15000.0 * (1 + i % 5);
    auto op = ParallelizeFloating(cost, params, usage, 0.7, num_sites);
    EXPECT_TRUE(op.ok()) << op.status().ToString();
    ops.push_back(std::move(op).value());
  }
  return ops;
}

std::vector<ParallelizedOp> MaterializedCopy(
    const std::vector<ParallelizedOp>& ops) {
  std::vector<ParallelizedOp> expanded = ops;
  for (auto& op : expanded) op.clones.Materialize();
  return expanded;
}

void ExpectIdenticalSchedules(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.num_placements(), b.num_placements());
  for (int p = 0; p < a.num_placements(); ++p) {
    const ClonePlacement& pa = a.placements()[static_cast<size_t>(p)];
    const ClonePlacement& pb = b.placements()[static_cast<size_t>(p)];
    EXPECT_EQ(pa.op_id, pb.op_id);
    EXPECT_EQ(pa.clone_idx, pb.clone_idx);
    EXPECT_EQ(pa.site, pb.site);
    EXPECT_EQ(pa.work, pb.work);
    EXPECT_EQ(pa.t_seq, pb.t_seq);  // bitwise
  }
  EXPECT_EQ(a.Makespan(), b.Makespan());  // bitwise
}

// Differential sweep: OPERATORSCHEDULE must produce byte-identical
// schedules from compressed and materialized clone sets, across list
// orders and both site-selection engines.
TEST(CloneSetDifferentialTest, OperatorScheduleIdenticalAfterCompression) {
  const OverlapUsageModel usage(0.5);
  const int num_sites = 12;
  const std::vector<ParallelizedOp> uniform = UniformOpMix(usage, num_sites);
  const std::vector<ParallelizedOp> expanded = MaterializedCopy(uniform);
  for (ListOrder order : {ListOrder::kDecreasingLength,
                          ListOrder::kIncreasingLength,
                          ListOrder::kInputOrder, ListOrder::kRandom}) {
    for (bool indexed : {true, false}) {
      OperatorScheduleOptions options;
      options.order = order;
      options.placement_index = indexed;
      auto a = OperatorSchedule(uniform, num_sites, 3, options);
      auto b = OperatorSchedule(expanded, num_sites, 3, options);
      ASSERT_TRUE(a.ok() && b.ok());
      ExpectIdenticalSchedules(*a, *b);
    }
  }
}

TEST(CloneSetDifferentialTest, PenaltyAwareIdenticalAfterCompression) {
  const OverlapUsageModel usage(0.5);
  const int num_sites = 8;
  const std::vector<ParallelizedOp> uniform = UniformOpMix(usage, num_sites);
  const std::vector<ParallelizedOp> expanded = MaterializedCopy(uniform);
  const PreemptabilityPenalty penalty =
      PreemptabilityPenalty::ForDim(3, kDiskDim, 0.1);
  auto a = PenaltyAwareOperatorSchedule(uniform, num_sites, 3, penalty);
  auto b = PenaltyAwareOperatorSchedule(expanded, num_sites, 3, penalty);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdenticalSchedules(*a, *b);
  EXPECT_EQ(PenalizedMakespan(*a, penalty), PenalizedMakespan(*b, penalty));
}

TEST(CloneSetDifferentialTest, ExhaustiveSearchIdenticalAfterCompression) {
  const OverlapUsageModel usage(0.5);
  const CostParams params;
  // Small instance: the branch-and-bound search must visit the same tree.
  std::vector<ParallelizedOp> uniform;
  for (int i = 0; i < 4; ++i) {
    OperatorCost cost;
    cost.op_id = i;
    cost.processing = WorkVector({80.0 + 30.0 * i, 60.0, 5.0});
    cost.data_bytes = 10000.0;
    auto op = ParallelizeAtDegree(cost, params, usage, 2, 3);
    ASSERT_TRUE(op.ok());
    uniform.push_back(std::move(op).value());
  }
  const std::vector<ParallelizedOp> expanded = MaterializedCopy(uniform);
  auto a = ExhaustiveOptimalMakespan(uniform, 3, 3);
  auto b = ExhaustiveOptimalMakespan(expanded, 3, 3);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->proven_optimal);
  EXPECT_EQ(a->makespan, b->makespan);  // bitwise
  EXPECT_EQ(a->nodes_explored, b->nodes_explored);
}

TEST(CloneSetDifferentialTest, FluidSimulationIdenticalAfterCompression) {
  const OverlapUsageModel usage(0.5);
  const int num_sites = 6;
  const std::vector<ParallelizedOp> uniform = UniformOpMix(usage, num_sites);
  const std::vector<ParallelizedOp> expanded = MaterializedCopy(uniform);
  auto a = OperatorSchedule(uniform, num_sites, 3);
  auto b = OperatorSchedule(expanded, num_sites, 3);
  ASSERT_TRUE(a.ok() && b.ok());
  for (SharingPolicy policy :
       {SharingPolicy::kOptimalStretch, SharingPolicy::kUniformSlowdown}) {
    const FluidSimulator simulator(usage, policy);
    auto sa = simulator.SimulatePhase(*a);
    auto sb = simulator.SimulatePhase(*b);
    ASSERT_TRUE(sa.ok() && sb.ok());
    EXPECT_EQ(sa->makespan, sb->makespan);  // bitwise
    ASSERT_EQ(sa->clone_finish.size(), sb->clone_finish.size());
    for (size_t i = 0; i < sa->clone_finish.size(); ++i) {
      EXPECT_EQ(sa->clone_finish[i], sb->clone_finish[i]);
    }
  }
}

}  // namespace
}  // namespace mrs
