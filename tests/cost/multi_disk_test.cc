#include <gtest/gtest.h>

#include "core/tree_schedule.h"
#include "cost/cost_model.h"
#include "resource/machine.h"
#include "test_util.h"
#include "workload/experiment.h"

namespace mrs {
namespace {

PhysicalOp ScanOp(int64_t tuples) {
  PhysicalOp op;
  op.id = 0;
  op.kind = OperatorKind::kScan;
  op.input_tuples = tuples;
  op.output_tuples = tuples;
  op.consumer = 1;
  return op;
}

TEST(MachineWithDisksTest, LayoutAndNames) {
  MachineConfig m = MachineConfig::WithDisks(10, 3);
  ASSERT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.num_sites, 10);
  EXPECT_EQ(m.dims, 5);
  ASSERT_EQ(m.resource_names.size(), 5u);
  EXPECT_EQ(m.resource_names[0], "cpu");
  EXPECT_EQ(m.resource_names[1], "disk0");
  EXPECT_EQ(m.resource_names[2], "net");
  EXPECT_EQ(m.resource_names[3], "disk1");
  EXPECT_EQ(m.resource_names[4], "disk2");
}

TEST(MultiDiskCostTest, StripesDiskWorkEvenly) {
  CostModel one(CostParams{}, 3, 1);
  CostModel three(CostParams{}, 5, 3);
  auto base = one.Cost(ScanOp(12000));
  auto striped = three.Cost(ScanOp(12000));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(striped.ok());
  // 12000 tuples = 300 pages = 6000 ms of disk time.
  EXPECT_NEAR(base->processing[kDiskDim], 6000.0, 1e-9);
  EXPECT_NEAR(striped->processing[kDiskDim], 2000.0, 1e-9);
  EXPECT_NEAR(striped->processing[3], 2000.0, 1e-9);
  EXPECT_NEAR(striped->processing[4], 2000.0, 1e-9);
  // Total disk work and CPU work are preserved.
  EXPECT_NEAR(striped->ProcessingArea(), base->ProcessingArea(), 1e-9);
  EXPECT_NEAR(striped->processing[kCpuDim], base->processing[kCpuDim],
              1e-9);
  // Net dimension stays at index 2 regardless of disk count.
  EXPECT_NEAR(striped->processing[kNetDim], 0.0, 1e-9);
}

TEST(MultiDiskCostTest, SortOpsAlsoStriped) {
  PhysicalOp run;
  run.id = 0;
  run.kind = OperatorKind::kSortRun;
  run.input_tuples = 4000;  // 100 pages = 2000 ms disk
  CostModel two(CostParams{}, 4, 2);
  auto cost = two.Cost(run);
  ASSERT_TRUE(cost.ok());
  EXPECT_NEAR(cost->processing[kDiskDim], 1000.0, 1e-9);
  EXPECT_NEAR(cost->processing[3], 1000.0, 1e-9);
}

TEST(MultiDiskScheduleTest, MoreDisksReduceResponse) {
  // Same workload, same site count: striping I/O over more disks should
  // reduce the average response (the disk was the bottleneck resource
  // under Table 2's balanced settings once communication joins in).
  ExperimentConfig config;
  config.queries_per_point = 5;
  config.workload.num_joins = 10;
  config.overlap = 0.3;
  // Make the disk the bottleneck resource so striping is visible (Table
  // 2's default keeps CPU and disk balanced).
  config.cost.disk_ms_per_page = 60.0;

  double prev = 0.0;
  for (int disks : {1, 2, 4}) {
    config.machine = MachineConfig::WithDisks(16, disks);
    config.num_disks = disks;
    auto stat = MeasureAverageResponse(SchedulerKind::kTreeSchedule, config);
    ASSERT_TRUE(stat.ok());
    if (disks > 1) {
      EXPECT_LT(stat->mean(), prev);
    }
    prev = stat->mean();
  }
}

TEST(MultiDiskScheduleTest, FullPipelineAtHigherDimensionality) {
  ExperimentConfig config;
  config.queries_per_point = 2;
  config.workload.num_joins = 8;
  config.machine = MachineConfig::WithDisks(12, 3);
  config.num_disks = 3;
  for (int q = 0; q < 2; ++q) {
    auto artifacts = PrepareQuery(config, q);
    ASSERT_TRUE(artifacts.ok());
    EXPECT_EQ(artifacts->costs.front().processing.dim(), 5u);
    const OverlapUsageModel usage(config.overlap);
    auto result = TreeSchedule(artifacts->op_tree, artifacts->task_tree,
                               artifacts->costs, config.cost, config.machine,
                               usage);
    ASSERT_TRUE(result.ok());
    for (const auto& phase : result->phases) {
      EXPECT_TRUE(phase.schedule.Validate(phase.ops).ok());
      EXPECT_EQ(phase.schedule.dims(), 5);
    }
  }
}

TEST(MultiDiskCostTest, RejectsInsufficientDims) {
  EXPECT_DEATH(CostModel(CostParams{}, 3, 2), "");
}

}  // namespace
}  // namespace mrs
