#include "cost/parallelize.h"

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "resource/machine.h"

namespace mrs {
namespace {

// A scan-like operator: 425ms CPU, 500ms disk, ships 128000 bytes.
OperatorCost ScanCost() {
  OperatorCost cost;
  cost.op_id = 7;
  cost.kind = OperatorKind::kScan;
  cost.processing = WorkVector({425.0, 500.0, 0.0});
  cost.data_bytes = 128000.0;
  return cost;
}

TEST(MaxCoarseGrainDegreeTest, HandComputedValue) {
  CostParams params;
  // (0.7 * 925 - 76.8) / 15 = 38.04... -> 38.
  EXPECT_EQ(MaxCoarseGrainDegree(925.0, 128000.0, params, 0.7), 38);
  // Small f starves the numerator -> degree 1.
  EXPECT_EQ(MaxCoarseGrainDegree(925.0, 128000.0, params, 0.05), 1);
  // Even negative numerators clamp to 1 (Prop 4.1's max with 1).
  EXPECT_EQ(MaxCoarseGrainDegree(10.0, 1'000'000.0, params, 0.5), 1);
}

// Regression: alpha = 0 used to divide by zero and push +/-inf through
// std::floor into an int cast (UB). The degree is now the alpha -> 0+
// limit: communication-unbounded when the CG_f budget admits any
// parallelism at all, 1 otherwise.
TEST(MaxCoarseGrainDegreeTest, ZeroStartupIsCommunicationBounded) {
  CostParams params;
  params.startup_ms_per_site = 0.0;
  // Positive numerator: 0.7 * 925 > TransferMs(128000) -> unbounded (the
  // caller clamps with num_sites).
  EXPECT_EQ(MaxCoarseGrainDegree(925.0, 128000.0, params, 0.7),
            std::numeric_limits<int>::max());
  // Negative numerator (beta*D > f*W_p): no degree satisfies CG_f beyond
  // the trivial one.
  EXPECT_EQ(MaxCoarseGrainDegree(10.0, 1'000'000.0, params, 0.5), 1);
  // Zero numerator is not "> 0": stays at 1, consistent with the strict
  // budget check.
  CostParams zero_comm = params;
  zero_comm.net_ms_per_byte = 0.0;
  EXPECT_EQ(MaxCoarseGrainDegree(0.0, 0.0, zero_comm, 0.7), 1);
}

// Regression: a strongly negative numerator with tiny alpha produced a
// quotient below INT_MIN, another UB int cast. Both extremes now clamp.
TEST(MaxCoarseGrainDegreeTest, ExtremeQuotientsClampToValidDegrees) {
  CostParams params;
  params.startup_ms_per_site = 1e-12;
  EXPECT_EQ(MaxCoarseGrainDegree(10.0, 1'000'000.0, params, 0.5), 1);
  EXPECT_EQ(MaxCoarseGrainDegree(1e9, 0.0, params, 0.9),
            std::numeric_limits<int>::max());
}

TEST(MaxCoarseGrainDegreeTest, MonotoneInF) {
  CostParams params;
  int prev = 0;
  for (double f = 0.1; f <= 1.0; f += 0.1) {
    const int n = MaxCoarseGrainDegree(925.0, 128000.0, params, f);
    EXPECT_GE(n, prev);
    prev = n;
  }
}

TEST(SplitIntoClonesTest, ConservesTotalWork) {
  CostParams params;
  const OperatorCost cost = ScanCost();
  for (int n : {1, 2, 3, 7, 16}) {
    const auto clones = SplitIntoClones(cost, n, params);
    ASSERT_EQ(static_cast<int>(clones.size()), n);
    const WorkVector total = SumVectors(clones);
    // Total = W_p + beta*D + alpha*N (the communication area's startup).
    EXPECT_NEAR(total.Total(),
                cost.ProcessingArea() + params.TransferMs(cost.data_bytes) +
                    params.startup_ms_per_site * n,
                1e-9);
  }
}

TEST(SplitIntoClonesTest, CoordinatorCarriesStartup) {
  CostParams params;
  const auto clones = SplitIntoClones(ScanCost(), 2, params);
  // Non-coordinator clone: [212.5, 250, 38.4].
  EXPECT_NEAR(clones[1][kCpuDim], 212.5, 1e-9);
  EXPECT_NEAR(clones[1][kDiskDim], 250.0, 1e-9);
  EXPECT_NEAR(clones[1][kNetDim], 38.4, 1e-9);
  // Coordinator adds alpha*N/2 = 15 to CPU and net (EA1).
  EXPECT_NEAR(clones[0][kCpuDim], 227.5, 1e-9);
  EXPECT_NEAR(clones[0][kDiskDim], 250.0, 1e-9);
  EXPECT_NEAR(clones[0][kNetDim], 53.4, 1e-9);
}

TEST(SplitIntoClonesTest, CoordinatorDominatesComponentwise) {
  CostParams params;
  for (int n : {2, 5, 9}) {
    const auto clones = SplitIntoClones(ScanCost(), n, params);
    for (int k = 1; k < n; ++k) {
      EXPECT_TRUE(clones[static_cast<size_t>(k)].DominatedBy(clones[0]));
    }
  }
}

TEST(ParallelTimeTest, MatchesCoordinatorSequentialTime) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  const OperatorCost cost = ScanCost();
  for (int n : {1, 2, 4, 11}) {
    const auto clones = SplitIntoClones(cost, n, params);
    EXPECT_NEAR(ParallelTime(cost, n, params, usage),
                usage.SequentialTime(clones[0]), 1e-9);
  }
}

TEST(ParallelTimeTest, HandComputedTwoClones) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  // Coordinator at N=2 is [227.5, 250, 53.4]: T = .5*250 + .5*530.9.
  EXPECT_NEAR(ParallelTime(ScanCost(), 2, params, usage), 390.45, 1e-9);
}

TEST(OptimalDegreeTest, InteriorMinimum) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  const OperatorCost cost = ScanCost();
  const int n_opt = OptimalDegree(cost, params, usage, 140);
  EXPECT_GT(n_opt, 1);
  EXPECT_LT(n_opt, 140);
  // A4 holds up to the optimum: T_par is non-increasing on [1, n_opt].
  double prev = ParallelTime(cost, 1, params, usage);
  for (int n = 2; n <= n_opt; ++n) {
    const double t = ParallelTime(cost, n, params, usage);
    EXPECT_LE(t, prev + 1e-9);
    prev = t;
  }
  // And it strictly increases immediately afterwards.
  EXPECT_GT(ParallelTime(cost, n_opt + 1, params, usage),
            ParallelTime(cost, n_opt, params, usage));
}

TEST(OptimalDegreeTest, RespectsPMax) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  EXPECT_LE(OptimalDegree(ScanCost(), params, usage, 4), 4);
  EXPECT_EQ(OptimalDegree(ScanCost(), params, usage, 1), 1);
}

TEST(ParallelizeFloatingTest, DegreeIsMinOfCaps) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  const OperatorCost cost = ScanCost();
  // f = 0.7: N_max = 38; optimal degree ~ sqrt-ish; P = 140.
  auto op = ParallelizeFloating(cost, params, usage, 0.7, 140);
  ASSERT_TRUE(op.ok());
  const int n_opt = OptimalDegree(cost, params, usage, 140);
  EXPECT_EQ(op->degree, std::min(38, n_opt));
  EXPECT_FALSE(op->rooted);
  EXPECT_EQ(op->op_id, 7);
  // Tight site budget wins.
  auto capped = ParallelizeFloating(cost, params, usage, 0.7, 3);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->degree, 3);
}

TEST(ParallelizeFloatingTest, TParIsMaxCloneTime) {
  CostParams params;
  OverlapUsageModel usage(0.3);
  auto op = ParallelizeFloating(ScanCost(), params, usage, 0.7, 16);
  ASSERT_TRUE(op.ok());
  double max_t = 0.0;
  for (double t : op->t_seq) max_t = std::max(max_t, t);
  EXPECT_DOUBLE_EQ(op->t_par, max_t);
  EXPECT_EQ(op->t_seq.size(), static_cast<size_t>(op->degree));
}

TEST(ParallelizeFloatingTest, RejectsBadInput) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  EXPECT_FALSE(ParallelizeFloating(ScanCost(), params, usage, 0.7, 0).ok());
  EXPECT_FALSE(ParallelizeFloating(ScanCost(), params, usage, -0.1, 8).ok());
  OperatorCost bad = ScanCost();
  bad.data_bytes = -5.0;
  EXPECT_FALSE(ParallelizeFloating(bad, params, usage, 0.7, 8).ok());
}

TEST(ParallelizeAtDegreeTest, ExplicitDegree) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  auto op = ParallelizeAtDegree(ScanCost(), params, usage, 5, 8);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op->degree, 5);
  EXPECT_FALSE(ParallelizeAtDegree(ScanCost(), params, usage, 0, 8).ok());
  EXPECT_FALSE(ParallelizeAtDegree(ScanCost(), params, usage, 9, 8).ok());
}

TEST(ParallelizeRootedTest, HomeFixesDegreeAndOrder) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  auto op = ParallelizeRooted(ScanCost(), params, usage, {4, 1, 6}, 8);
  ASSERT_TRUE(op.ok());
  EXPECT_TRUE(op->rooted);
  EXPECT_EQ(op->degree, 3);
  EXPECT_EQ(op->home, (std::vector<int>{4, 1, 6}));
}

TEST(ParallelizeRootedTest, RejectsBadHomes) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  EXPECT_FALSE(ParallelizeRooted(ScanCost(), params, usage, {}, 8).ok());
  EXPECT_FALSE(ParallelizeRooted(ScanCost(), params, usage, {1, 1}, 8).ok());
  EXPECT_FALSE(ParallelizeRooted(ScanCost(), params, usage, {8}, 8).ok());
  EXPECT_FALSE(ParallelizeRooted(ScanCost(), params, usage, {-1}, 8).ok());
}

TEST(ParallelizedOpTest, TotalWorkIsCloneSum) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  auto op = ParallelizeAtDegree(ScanCost(), params, usage, 4, 8);
  ASSERT_TRUE(op.ok());
  const WorkVector total = op->TotalWork();
  EXPECT_NEAR(total.Total(),
              925.0 + params.TransferMs(128000.0) + 15.0 * 4, 1e-9);
}

/// Property sweep over (f, P, eps): chosen degrees always satisfy the CG_f
/// condition W_c <= f*W_p (or degree 1 when even that is not CG_f), and
/// non-increasing T_par on [1, degree] (assumption A4).
class CoarseGrainPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, int, double>> {};

TEST_P(CoarseGrainPropertyTest, DegreeRespectsGranularityAndA4) {
  const auto [f, p, eps] = GetParam();
  CostParams params;
  OverlapUsageModel usage(eps);
  const OperatorCost cost = ScanCost();
  auto op = ParallelizeFloating(cost, params, usage, f, p);
  ASSERT_TRUE(op.ok());
  ASSERT_GE(op->degree, 1);
  ASSERT_LE(op->degree, p);
  if (op->degree > 1) {
    EXPECT_LE(params.CommunicationArea(op->degree, cost.data_bytes),
              f * cost.ProcessingArea() + 1e-9);
  }
  double prev = ParallelTime(cost, 1, params, usage);
  for (int n = 2; n <= op->degree; ++n) {
    const double t = ParallelTime(cost, n, params, usage);
    EXPECT_LE(t, prev + 1e-9);
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoarseGrainPropertyTest,
    ::testing::Combine(::testing::Values(0.3, 0.5, 0.7, 0.9),
                       ::testing::Values(1, 4, 20, 140),
                       ::testing::Values(0.1, 0.5, 0.9)));

}  // namespace
}  // namespace mrs
