#include "cost/parallelize_cache.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "cost/parallelize.h"

namespace mrs {
namespace {

OperatorCost MakeCost(int op_id, double cpu, double disk, double net,
                      double bytes) {
  OperatorCost cost;
  cost.op_id = op_id;
  cost.kind = OperatorKind::kProbe;
  cost.processing = WorkVector({cpu, disk, net});
  cost.data_bytes = bytes;
  return cost;
}

std::string OpString(const ParallelizedOp& op) {
  std::string out = std::to_string(op.degree) + "|" +
                    std::to_string(op.t_par) + "|" +
                    std::to_string(op.rooted);
  for (const WorkVector& clone : op.clones) out += "|" + clone.ToString();
  for (int site : op.home) out += "@" + std::to_string(site);
  return out;
}

TEST(ParallelizeCacheTest, FloatingMatchesDirectComputation) {
  const CostParams params;
  const OverlapUsageModel usage(0.5);
  ParallelizeCache cache(params, 0.5, 0.7, 16);
  const OperatorCost cost = MakeCost(3, 800.0, 500.0, 0.0, 40000.0);

  auto direct = ParallelizeFloating(cost, params, usage, 0.7, 16);
  auto cached = cache.Floating(cost);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(OpString(direct.value()), OpString(cached.value()));
  EXPECT_EQ(cached->op_id, 3);
  EXPECT_EQ(cached->kind, OperatorKind::kProbe);
  EXPECT_EQ(cache.counter().misses(), 1u);

  // Second call with the same signature hits, regardless of identity.
  OperatorCost twin = cost;
  twin.op_id = 9;
  twin.kind = OperatorKind::kScan;
  auto hit = cache.Floating(twin);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(cache.counter().hits(), 1u);
  EXPECT_EQ(hit->op_id, 9) << "identity must follow the caller, not the key";
  EXPECT_EQ(hit->kind, OperatorKind::kScan);
  EXPECT_EQ(hit->degree, cached->degree);
  EXPECT_EQ(hit->t_par, cached->t_par);
}

TEST(ParallelizeCacheTest, AtDegreeKeyedSeparatelyFromFloating) {
  const CostParams params;
  ParallelizeCache cache(params, 0.5, 0.7, 16);
  const OperatorCost cost = MakeCost(0, 600.0, 300.0, 0.0, 20000.0);

  ASSERT_TRUE(cache.Floating(cost).ok());
  ASSERT_TRUE(cache.AtDegree(cost, 2).ok());
  ASSERT_TRUE(cache.AtDegree(cost, 3).ok());
  EXPECT_EQ(cache.counter().misses(), 3u);
  EXPECT_EQ(cache.NumEntries(), 3u);

  const OverlapUsageModel usage(0.5);
  auto direct = ParallelizeAtDegree(cost, params, usage, 2, 16);
  auto cached = cache.AtDegree(cost, 2);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(OpString(direct.value()), OpString(cached.value()));
  EXPECT_EQ(cache.counter().hits(), 1u);
}

TEST(ParallelizeCacheTest, RootedServesSplitFromCacheAndPinsHome) {
  const CostParams params;
  const OverlapUsageModel usage(0.5);
  ParallelizeCache cache(params, 0.5, 0.7, 16);
  const OperatorCost cost = MakeCost(1, 500.0, 250.0, 0.0, 10000.0);

  auto direct = ParallelizeRooted(cost, params, usage, {4, 7}, 16);
  auto cached = cache.Rooted(cost, {4, 7});
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(OpString(direct.value()), OpString(cached.value()));
  EXPECT_TRUE(cached->rooted);
  EXPECT_EQ(cached->home, (std::vector<int>{4, 7}));

  // A different home with the same degree reuses the memoized split.
  auto moved = cache.Rooted(cost, {0, 15});
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(cache.counter().hits(), 1u);
  EXPECT_EQ(moved->home, (std::vector<int>{0, 15}));
  EXPECT_EQ(moved->clones.size(), cached->clones.size());
}

TEST(ParallelizeCacheTest, RootedStillValidatesHome) {
  ParallelizeCache cache(CostParams{}, 0.5, 0.7, 8);
  const OperatorCost cost = MakeCost(0, 100.0, 50.0, 0.0, 1000.0);
  EXPECT_FALSE(cache.Rooted(cost, {}).ok());
  EXPECT_FALSE(cache.Rooted(cost, {8}).ok());       // out of range
  EXPECT_FALSE(cache.Rooted(cost, {1, 1}).ok());    // duplicate site
  EXPECT_FALSE(cache.Rooted(cost, {-1}).ok());
}

TEST(ParallelizeCacheTest, ErrorsAreNotCached) {
  ParallelizeCache cache(CostParams{}, 0.5, 0.7, 8);
  const OperatorCost cost = MakeCost(0, 100.0, 50.0, 0.0, 1000.0);
  EXPECT_FALSE(cache.AtDegree(cost, 0).ok());
  EXPECT_FALSE(cache.AtDegree(cost, 9).ok());  // > num_sites
  EXPECT_EQ(cache.NumEntries(), 0u);

  // Degree 0 is the floating sentinel in the key space: an invalid
  // degree-0 request must still fail after a floating entry for the same
  // signature has been stored.
  ASSERT_TRUE(cache.Floating(cost).ok());
  EXPECT_FALSE(cache.AtDegree(cost, 0).ok());
}

TEST(ParallelizeCacheTest, CompatibleWithIsExact) {
  const CostParams params;
  ParallelizeCache cache(params, 0.5, 0.7, 16);
  EXPECT_TRUE(cache.CompatibleWith(params, 0.5, 0.7, 16));
  EXPECT_FALSE(cache.CompatibleWith(params, 0.5, 0.7, 17));
  EXPECT_FALSE(cache.CompatibleWith(params, 0.5, 0.71, 16));
  EXPECT_FALSE(cache.CompatibleWith(params, 0.49, 0.7, 16));
  CostParams other = params;
  other.startup_ms_per_site += 1.0;
  EXPECT_FALSE(cache.CompatibleWith(other, 0.5, 0.7, 16));
}

TEST(ParallelizeCacheTest, DistinctSignaturesDoNotCollide) {
  ParallelizeCache cache(CostParams{}, 0.5, 0.7, 16);
  const OperatorCost a = MakeCost(0, 800.0, 500.0, 0.0, 40000.0);
  OperatorCost b = a;
  b.data_bytes += 1.0;
  OperatorCost c = a;
  c.processing = WorkVector({800.0, 500.0 + 1e-9, 0.0});

  auto ra = cache.Floating(a);
  auto rb = cache.Floating(b);
  auto rc = cache.Floating(c);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(cache.counter().misses(), 3u);
  EXPECT_EQ(cache.counter().hits(), 0u);
  EXPECT_EQ(cache.NumEntries(), 3u);
}

/// The cache keeps exactly one accounting path: its per-instance
/// HitMissCounter, published read-through into the metrics registry. The
/// registry totals must track the instance counters exactly, at every
/// point in time, and across multiple instances they must sum.
TEST(ParallelizeCacheTest, RegistryTotalsMatchInstanceCounters) {
  MetricsRegistry registry;
  ParallelizeCache cache(CostParams{}, 0.5, 0.7, 16, &registry);
  const OperatorCost cost = MakeCost(0, 800.0, 500.0, 0.0, 40000.0);

  EXPECT_EQ(registry.Snapshot().CounterValue("parallelize_cache.hits"), 0u);
  EXPECT_EQ(registry.Snapshot().CounterValue("parallelize_cache.misses"), 0u);

  ASSERT_TRUE(cache.Floating(cost).ok());  // miss
  ASSERT_TRUE(cache.Floating(cost).ok());  // hit
  ASSERT_TRUE(cache.AtDegree(cost, 4).ok());  // miss
  {
    MetricsSnapshot snap = registry.Snapshot();
    EXPECT_EQ(snap.CounterValue("parallelize_cache.hits"), cache.counter().hits());
    EXPECT_EQ(snap.CounterValue("parallelize_cache.misses"),
              cache.counter().misses());
    EXPECT_EQ(snap.CounterValue("parallelize_cache.hits"), 1u);
    EXPECT_EQ(snap.CounterValue("parallelize_cache.misses"), 2u);
  }

  // A second cache on the same registry contributes to the same totals
  // without perturbing per-instance counts.
  {
    ParallelizeCache other(CostParams{}, 0.5, 0.7, 16, &registry);
    ASSERT_TRUE(other.Floating(cost).ok());  // miss in the new cache
    MetricsSnapshot snap = registry.Snapshot();
    EXPECT_EQ(snap.CounterValue("parallelize_cache.hits"),
              cache.counter().hits() + other.counter().hits());
    EXPECT_EQ(snap.CounterValue("parallelize_cache.misses"),
              cache.counter().misses() + other.counter().misses());
    EXPECT_EQ(cache.counter().lookups(), 3u);
    EXPECT_EQ(other.counter().lookups(), 1u);
  }

  // Destroying a cache unregisters its callback; the survivor still reports.
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("parallelize_cache.hits"), 1u);
  EXPECT_EQ(snap.CounterValue("parallelize_cache.misses"), 2u);
}

/// Hammer one cache from many threads over a small signature space: every
/// result must equal the direct computation (first-insert-wins is safe
/// because entries are pure functions of the key).
TEST(ParallelizeCacheTest, ConcurrentLookupsAreConsistent) {
  const CostParams params;
  const OverlapUsageModel usage(0.5);
  ParallelizeCache cache(params, 0.5, 0.7, 16);

  std::vector<OperatorCost> signatures;
  for (int i = 0; i < 8; ++i) {
    signatures.push_back(
        MakeCost(i, 400.0 + 100.0 * i, 200.0 + 50.0 * i, 0.0,
                 10000.0 * (1 + i % 3)));
  }
  std::vector<std::string> expected;
  for (const OperatorCost& cost : signatures) {
    auto direct = ParallelizeFloating(cost, params, usage, 0.7, 16);
    ASSERT_TRUE(direct.ok());
    expected.push_back(OpString(direct.value()));
  }

  constexpr int kThreads = 8;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 200; ++round) {
        const size_t i = static_cast<size_t>((t + round) % 8);
        auto result = cache.Floating(signatures[i]);
        if (!result.ok() || OpString(result.value()) != expected[i]) {
          ++mismatches[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<size_t>(t)], 0) << "thread " << t;
  }
  EXPECT_EQ(cache.NumEntries(), signatures.size());
  EXPECT_EQ(cache.counter().lookups(), 8u * 200u);
}

}  // namespace
}  // namespace mrs
