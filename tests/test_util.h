#ifndef MRS_TESTS_TEST_UTIL_H_
#define MRS_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "cost/parallelize.h"
#include "plan/operator_tree.h"
#include "plan/plan_tree.h"
#include "plan/task_tree.h"
#include "resource/usage_model.h"

namespace mrs {
namespace testing_util {

/// Assembles a ParallelizedOp directly from clone work vectors — used by
/// scheduler tests to craft synthetic instances without going through the
/// cost model.
inline ParallelizedOp MakeOp(int id, std::vector<WorkVector> clones,
                             const OverlapUsageModel& usage,
                             std::vector<int> home = {}) {
  ParallelizedOp op;
  op.op_id = id;
  op.kind = OperatorKind::kScan;
  op.degree = static_cast<int>(clones.size());
  op.clones = std::move(clones);
  for (const auto& w : op.clones) {
    const double t = usage.SequentialTime(w);
    op.t_seq.push_back(t);
    op.t_par = std::max(op.t_par, t);
  }
  if (!home.empty()) {
    op.rooted = true;
    op.home = std::move(home);
  }
  return op;
}

/// A single-clone op with the given work vector.
inline ParallelizedOp MakeUnitOp(int id, WorkVector w,
                                 const OverlapUsageModel& usage) {
  return MakeOp(id, {std::move(w)}, usage);
}

/// Lower bound used in Theorem 5.1(a)/7.1 style checks:
/// LB = max( l(S)/P , max_i T_par_i ).
inline double ListScheduleLowerBound(const std::vector<ParallelizedOp>& ops,
                                     int num_sites) {
  double h = 0.0;
  WorkVector sum;
  for (const auto& op : ops) {
    h = std::max(h, op.t_par);
    WorkVector total = op.TotalWork();
    if (sum.empty()) {
      sum = total;
    } else {
      sum += total;
    }
  }
  const double packing =
      sum.empty() ? 0.0 : sum.Length() / static_cast<double>(num_sites);
  return std::max(h, packing);
}

/// A self-contained bundle of plan-derived scheduler inputs for tests.
struct PlanFixture {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<PlanTree> plan;
  OperatorTree op_tree;
  TaskTree task_tree;
  std::vector<OperatorCost> costs;
};

/// Builds a catalog of relations with the given sizes.
inline std::unique_ptr<Catalog> MakeCatalog(
    const std::vector<int64_t>& sizes) {
  auto catalog = std::make_unique<Catalog>();
  for (size_t i = 0; i < sizes.size(); ++i) {
    Relation r;
    r.name = "R" + std::to_string(i);
    r.num_tuples = sizes[i];
    auto id = catalog->AddRelation(std::move(r));
    if (!id.ok()) std::abort();
  }
  return catalog;
}

/// Derives operator tree, task tree, and costs from a plan. `build`
/// receives the PlanTree and adds leaves/joins; the helper finalizes.
template <typename BuildFn>
PlanFixture MakeFixture(const std::vector<int64_t>& sizes, BuildFn build,
                        int dims = 3) {
  PlanFixture fx;
  fx.catalog = MakeCatalog(sizes);
  fx.plan = std::make_unique<PlanTree>(fx.catalog.get());
  build(fx.plan.get());
  if (!fx.plan->Finalize().ok()) std::abort();
  auto ops = OperatorTree::FromPlan(*fx.plan);
  if (!ops.ok()) std::abort();
  fx.op_tree = std::move(ops).value();
  auto tasks = TaskTree::FromOperatorTree(&fx.op_tree);
  if (!tasks.ok()) std::abort();
  fx.task_tree = std::move(tasks).value();
  CostModel model(CostParams{}, dims);
  auto costs = model.CostAll(fx.op_tree);
  if (!costs.ok()) std::abort();
  fx.costs = std::move(costs).value();
  return fx;
}

/// A balanced bushy plan fixture: (R0 JOIN R1) JOIN (R2 JOIN R3).
inline PlanFixture BushyFourWayFixture(
    std::vector<int64_t> sizes = {4000, 2000, 8000, 1000}) {
  return MakeFixture(sizes, [](PlanTree* plan) {
    int j0 =
        plan->AddJoin(plan->AddLeaf(0).value(), plan->AddLeaf(1).value())
            .value();
    int j1 =
        plan->AddJoin(plan->AddLeaf(2).value(), plan->AddLeaf(3).value())
            .value();
    plan->AddJoin(j0, j1).value();
  });
}

/// Seed for randomized/fuzz tests: the `MRS_FUZZ_SEED` environment
/// variable overrides `fallback`, so a failure printed as
/// `MRS_FUZZ_SEED=<seed> ctest -R <test>` replays exactly.
inline uint64_t FuzzSeed(uint64_t fallback) {
  const char* env = std::getenv("MRS_FUZZ_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

/// A fully pipelined chain of `joins` joins (2 phases).
inline PlanFixture PipelinedChainFixture(int joins, int64_t tuples = 3000) {
  std::vector<int64_t> sizes(static_cast<size_t>(joins + 1), tuples);
  return MakeFixture(sizes, [joins](PlanTree* plan) {
    int cur = plan->AddLeaf(0).value();
    for (int i = 1; i <= joins; ++i) {
      cur = plan->AddJoin(cur, plan->AddLeaf(i).value()).value();
    }
  });
}

}  // namespace testing_util
}  // namespace mrs

#endif  // MRS_TESTS_TEST_UTIL_H_
