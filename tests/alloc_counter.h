#ifndef MRS_TESTS_ALLOC_COUNTER_H_
#define MRS_TESTS_ALLOC_COUNTER_H_

#include <cstdint>

namespace mrs {
namespace testing_util {

/// Test-only heap-allocation counter backed by replacement global
/// operator new/delete (see alloc_counter.cc). Used to pin the
/// allocation-free guarantees of DESIGN.md §4f: zero heap allocations per
/// placed clone in the OPERATORSCHEDULE steady-state loop and per event
/// in the fluid simulator, for work vectors with d <= kInlineDims.
///
/// Under ASan/TSan/MSan the sanitizer runtime owns the allocator, so the
/// interposer is compiled out and AllocCountingAvailable() returns false;
/// callers should GTEST_SKIP() in that case.

/// True iff the counting operator new is linked into this binary.
bool AllocCountingAvailable();

/// Total number of operator new / operator new[] calls so far (all
/// threads). Only meaningful when AllocCountingAvailable().
uint64_t AllocCount();

}  // namespace testing_util
}  // namespace mrs

#endif  // MRS_TESTS_ALLOC_COUNTER_H_
