#include "io/schedule_export.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::MakeUnitOp;
using testing_util::PlanFixture;

TEST(ScheduleExportTest, JsonContainsPlacements) {
  OverlapUsageModel usage(0.5);
  Schedule s(2, 2);
  ASSERT_TRUE(s.Place(MakeUnitOp(7, {3.0, 4.0}, usage), 0, 1).ok());
  const std::string json = ScheduleToJson(s);
  EXPECT_NE(json.find("\"num_sites\":2"), std::string::npos);
  EXPECT_NE(json.find("\"op\":7"), std::string::npos);
  EXPECT_NE(json.find("\"site\":1"), std::string::npos);
  EXPECT_NE(json.find("\"makespan\":"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ScheduleExportTest, TreeJsonListsPhases) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 4;
  auto plan = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage);
  ASSERT_TRUE(plan.ok());
  const std::string json = TreeScheduleToJson(*plan);
  EXPECT_NE(json.find("\"response_time\":"), std::string::npos);
  for (size_t k = 0; k < plan->phases.size(); ++k) {
    EXPECT_NE(json.find("\"phase\":" + std::to_string(k)),
              std::string::npos);
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ScheduleExportTest, CsvHasRowPerSitePerPhase) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 5;
  auto plan = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage);
  ASSERT_TRUE(plan.ok());
  const std::string csv = TreeScheduleToCsv(*plan);
  const size_t rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(rows, 1 + plan->phases.size() * 5);  // header + P per phase
  EXPECT_NE(csv.find("phase,site,site_time,load_0,load_1,load_2,num_clones"),
            std::string::npos);
}

TEST(ScheduleExportTest, EmptyScheduleStillValidJson) {
  Schedule s(1, 1);
  const std::string json = ScheduleToJson(s);
  EXPECT_NE(json.find("\"makespan\":0.000000"), std::string::npos);
}

}  // namespace
}  // namespace mrs
