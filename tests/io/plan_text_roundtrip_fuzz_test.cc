// Round-trip fuzz for the plan text format: ~500 random catalogs/plans
// (random shape, sizes, sort/agg wrappers, build-side rule) must survive
// WritePlanText -> ParsePlanText with the plan tree and relation set
// reproduced exactly, and the text itself must be a byte fixpoint. The
// seed is printed on failure and can be replayed with MRS_FUZZ_SEED.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "io/plan_text.h"
#include "test_util.h"
#include "workload/generator.h"

namespace mrs {
namespace {

/// Structural equality of two plan trees, node by node from the roots:
/// kind, scanned relation (by name and cardinality), group fractions, and
/// output cardinalities must all agree.
::testing::AssertionResult SameTree(const PlanTree& a, int a_id,
                                    const PlanTree& b, int b_id) {
  const PlanNode& na = a.node(a_id);
  const PlanNode& nb = b.node(b_id);
  if (na.kind != nb.kind) {
    return ::testing::AssertionFailure()
           << "kind mismatch at (" << a_id << "," << b_id << "): "
           << PlanNodeKindToString(na.kind) << " vs "
           << PlanNodeKindToString(nb.kind);
  }
  if (na.output.num_tuples != nb.output.num_tuples) {
    return ::testing::AssertionFailure()
           << "output cardinality mismatch at (" << a_id << "," << b_id
           << "): " << na.output.num_tuples << " vs " << nb.output.num_tuples;
  }
  switch (na.kind) {
    case PlanNodeKind::kLeaf: {
      // GetRelation returns by value — copy the names out rather than
      // binding references into the temporaries.
      const std::string name_a =
          a.catalog().GetRelation(na.relation_id)->name;
      const std::string name_b =
          b.catalog().GetRelation(nb.relation_id)->name;
      if (name_a != name_b) {
        return ::testing::AssertionFailure()
               << "leaf relation mismatch: " << name_a << " vs " << name_b;
      }
      return ::testing::AssertionSuccess();
    }
    case PlanNodeKind::kJoin: {
      auto outer = SameTree(a, na.outer_child, b, nb.outer_child);
      if (!outer) return outer;
      return SameTree(a, na.inner_child, b, nb.inner_child);
    }
    case PlanNodeKind::kSort:
      return SameTree(a, na.unary_child, b, nb.unary_child);
    case PlanNodeKind::kAggregate:
      if (std::abs(na.group_fraction - nb.group_fraction) > 1e-12) {
        return ::testing::AssertionFailure()
               << "group fraction mismatch: " << na.group_fraction << " vs "
               << nb.group_fraction;
      }
      return SameTree(a, na.unary_child, b, nb.unary_child);
  }
  return ::testing::AssertionFailure() << "unreachable node kind";
}

TEST(PlanTextRoundTripFuzzTest, FiveHundredRandomPlansRoundTripExactly) {
  const uint64_t master_seed = testing_util::FuzzSeed(77001);
  Rng master(master_seed);
  constexpr int kCases = 500;
  for (int i = 0; i < kCases; ++i) {
    WorkloadParams params;
    params.num_joins = 1 + static_cast<int>(master.Index(12));
    params.sizing = master.Bernoulli(0.5) ? RelationSizing::kUniform
                                          : RelationSizing::kLogUniform;
    params.build_side = master.Bernoulli(0.5) ? BuildSideRule::kSmaller
                                              : BuildSideRule::kRandom;
    params.sort_probability = master.Bernoulli(0.5) ? 0.25 : 0.0;
    params.aggregate_probability = master.Bernoulli(0.5) ? 0.25 : 0.0;
    const uint64_t case_seed = master.Next();
    SCOPED_TRACE(::testing::Message()
                 << "case " << i << " of " << kCases << ", replay with "
                 << "MRS_FUZZ_SEED=" << master_seed
                 << " (case seed " << case_seed
                 << ", joins=" << params.num_joins << ")");

    Rng rng(case_seed);
    auto q = GenerateQuery(params, &rng);
    ASSERT_TRUE(q.ok()) << q.status().ToString();

    auto text = WritePlanText(*q->catalog, *q->plan);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    auto reparsed = ParsePlanText(text.value());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                               << text.value();

    // Relation set: same count, names, and cardinalities, in order.
    ASSERT_EQ(reparsed->catalog->num_relations(),
              q->catalog->num_relations());
    for (int r = 0; r < q->catalog->num_relations(); ++r) {
      EXPECT_EQ(reparsed->catalog->GetRelation(r)->name,
                q->catalog->GetRelation(r)->name);
      EXPECT_EQ(reparsed->catalog->GetRelation(r)->num_tuples,
                q->catalog->GetRelation(r)->num_tuples);
    }

    // Plan tree reproduced exactly.
    ASSERT_EQ(reparsed->plan->num_nodes(), q->plan->num_nodes());
    EXPECT_EQ(reparsed->plan->num_joins(), q->plan->num_joins());
    EXPECT_EQ(reparsed->plan->num_unary(), q->plan->num_unary());
    EXPECT_TRUE(SameTree(*q->plan, q->plan->root(), *reparsed->plan,
                         reparsed->plan->root()))
        << text.value();

    // Byte fixpoint: writing the reparsed plan reproduces the text.
    auto text2 = WritePlanText(*reparsed->catalog, *reparsed->plan);
    ASSERT_TRUE(text2.ok());
    EXPECT_EQ(text.value(), text2.value());
  }
}

TEST(PlanTextRoundTripFuzzTest, RandomGraphStanzasRoundTripExactly) {
  const uint64_t master_seed = testing_util::FuzzSeed(77002);
  Rng master(master_seed);
  constexpr int kCases = 300;
  for (int i = 0; i < kCases; ++i) {
    WorkloadParams params;
    params.num_joins = 1 + static_cast<int>(master.Index(12));
    const uint64_t case_seed = master.Next();
    SCOPED_TRACE(::testing::Message()
                 << "case " << i << " of " << kCases << ", replay with "
                 << "MRS_FUZZ_SEED=" << master_seed << " (case seed "
                 << case_seed << ", joins=" << params.num_joins << ")");

    Rng rng(case_seed);
    auto q = GenerateQuery(params, &rng);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    // Half the cases get extra edges: the stanza is not limited to trees.
    if (rng.Bernoulli(0.5)) {
      const int n = q->graph->num_relations();
      for (int extra = 0; extra < 2; ++extra) {
        const int a = static_cast<int>(rng.UniformInt(0, n - 1));
        const int b = static_cast<int>(rng.UniformInt(0, n - 1));
        if (a != b) (void)q->graph->AddJoin(a, b);  // duplicates rejected
      }
    }

    auto text = WriteGraphText(*q->catalog, *q->graph);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    auto reparsed = ParsePlanText(text.value());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                               << text.value();
    EXPECT_EQ(reparsed->plan, nullptr);
    ASSERT_NE(reparsed->graph, nullptr);

    // Edge list reproduced exactly, in order.
    ASSERT_EQ(reparsed->graph->num_relations(), q->graph->num_relations());
    ASSERT_EQ(reparsed->graph->num_joins(), q->graph->num_joins());
    for (int e = 0; e < q->graph->num_joins(); ++e) {
      EXPECT_EQ(reparsed->graph->edges()[e].left_relation,
                q->graph->edges()[e].left_relation);
      EXPECT_EQ(reparsed->graph->edges()[e].right_relation,
                q->graph->edges()[e].right_relation);
    }

    // Byte fixpoint.
    auto text2 = WriteGraphText(*reparsed->catalog, *reparsed->graph);
    ASSERT_TRUE(text2.ok());
    EXPECT_EQ(text.value(), text2.value());
  }
}

/// Malformed inputs are rejected with the documented line number — one
/// probe per error class of the parser.
TEST(PlanTextRoundTripFuzzTest, RejectionsCarryDocumentedLineNumbers) {
  const struct {
    const char* text;
    const char* want;  // substring the error message must contain
  } kCases[] = {
      {"relation r\nplan r\n", "line 1"},
      {"relation a 1\nrelation a 2\nplan a\n", "line 2"},
      {"relation a 1\n\n# comment\ntable b 2\nplan a\n", "line 4"},
      {"relation a 1\nplan a\nrelation b 2\n", "line 3"},
      {"relation a 1\nplan a\nplan a\n", "line 3"},
      {"relation a 1\nrelation b 2\nplan (join a ghost)\n", "line 3"},
      {"relation a 1\nplan (join a a)\n", "line 2"},
      {"relation a 1\nrelation b 2\nplan (join a b\n", "line 3"},
      {"relation a 1\nrelation b 2\nplan (cross a b)\n", "line 3"},
      {"relation a 1\nrelation b 2\nplan (join a b) extra\n", "line 3"},
      {"relation a 1\nplan\n", "line 2"},
      {"relation a 1\nplan (agg x a)\n", "line 2"},
      {"relation r 5 junk\nplan r\n", "line 1"},
      {"relation a 1\nrelation b 2\ngraph (a ghost)\n", "line 3"},
      {"relation a 1\nrelation b 2\ngraph a b\n", "line 3"},
      {"relation a 1\nrelation b 2\ngraph (a)\n", "line 3"},
      {"relation a 1\nrelation b 2\ngraph (a b\n", "line 3"},
      {"relation a 1\nrelation b 2\ngraph (a b) (b a)\n", "line 3"},
      {"relation a 1\nrelation b 2\ngraph (a b)\ngraph (a b)\n", "line 4"},
      {"relation a 1\nrelation b 2\nplan (join a b)\ngraph (a b)\n",
       "line 4"},
      {"relation a 1\nrelation b 2\ngraph (a b)\nplan (join a b)\n",
       "line 4"},
      {"relation a 1\ngraph\nrelation b 2\n", "line 3"},
  };
  for (const auto& test_case : kCases) {
    auto result = ParsePlanText(test_case.text);
    ASSERT_FALSE(result.ok()) << "accepted:\n" << test_case.text;
    EXPECT_NE(result.status().message().find(test_case.want),
              std::string::npos)
        << "input:\n"
        << test_case.text << "error: " << result.status().ToString();
  }
}

}  // namespace
}  // namespace mrs
