#include "io/plan_text.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace mrs {
namespace {

constexpr const char* kExample = R"(
# a three-way join
relation customer 30000
relation orders 90000
relation nation 25

plan (join (join orders customer) nation)
)";

TEST(PlanTextTest, ParsesExample) {
  auto parsed = ParsePlanText(kExample);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->catalog->num_relations(), 3);
  EXPECT_EQ(parsed->catalog->GetRelationByName("orders")->num_tuples, 90000);
  ASSERT_TRUE(parsed->plan->finalized());
  EXPECT_EQ(parsed->plan->num_joins(), 2);
  // R-numbers are catalog ids in declaration order: customer=R0,
  // orders=R1, nation=R2; the plan joins (orders customer) first.
  EXPECT_EQ(parsed->plan->ToString(), "((R1 JOIN R0) JOIN R2)");
  const PlanNode& root = parsed->plan->node(parsed->plan->root());
  EXPECT_FALSE(root.is_leaf);
  // Key-join sizing applied during parsing.
  EXPECT_EQ(root.output.num_tuples, 90000);
}

TEST(PlanTextTest, SingleRelationPlan) {
  auto parsed = ParsePlanText("relation r 100\nplan r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->plan->num_joins(), 0);
  EXPECT_EQ(parsed->plan->num_leaves(), 1);
}

TEST(PlanTextTest, InnerOuterOrderPreserved) {
  auto parsed = ParsePlanText(
      "relation big 5000\nrelation small 10\nplan (join big small)\n");
  ASSERT_TRUE(parsed.ok());
  const PlanNode& root = parsed->plan->node(parsed->plan->root());
  // outer = first argument, inner (build side) = second.
  EXPECT_EQ(parsed->plan->node(root.outer_child).output.name, "big");
  EXPECT_EQ(parsed->plan->node(root.inner_child).output.name, "small");
}

TEST(PlanTextTest, RoundTripsThroughWriter) {
  auto parsed = ParsePlanText(kExample);
  ASSERT_TRUE(parsed.ok());
  auto text = WritePlanText(*parsed->catalog, *parsed->plan);
  ASSERT_TRUE(text.ok());
  auto reparsed = ParsePlanText(text.value());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->plan->ToString(), parsed->plan->ToString());
  auto text2 = WritePlanText(*reparsed->catalog, *reparsed->plan);
  ASSERT_TRUE(text2.ok());
  EXPECT_EQ(text.value(), text2.value());
}

constexpr const char* kGraphExample = R"(
# the same three relations, as an unoptimized join graph
relation customer 30000
relation orders 90000
relation nation 25

graph (customer orders) (orders nation)
)";

TEST(PlanTextTest, ParsesGraphStanza) {
  auto parsed = ParsePlanText(kGraphExample);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->plan, nullptr);
  ASSERT_NE(parsed->graph, nullptr);
  EXPECT_EQ(parsed->graph->num_relations(), 3);
  ASSERT_EQ(parsed->graph->num_joins(), 2);
  // customer=0, orders=1, nation=2 in declaration order.
  EXPECT_EQ(parsed->graph->edges()[0].left_relation, 0);
  EXPECT_EQ(parsed->graph->edges()[0].right_relation, 1);
  EXPECT_EQ(parsed->graph->edges()[1].left_relation, 1);
  EXPECT_EQ(parsed->graph->edges()[1].right_relation, 2);
  EXPECT_TRUE(parsed->graph->IsTree());
}

TEST(PlanTextTest, ParsesEdgelessGraph) {
  auto parsed = ParsePlanText("relation r 100\ngraph\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_NE(parsed->graph, nullptr);
  EXPECT_EQ(parsed->graph->num_relations(), 1);
  EXPECT_EQ(parsed->graph->num_joins(), 0);
}

TEST(PlanTextTest, GraphRoundTripsThroughWriter) {
  auto parsed = ParsePlanText(kGraphExample);
  ASSERT_TRUE(parsed.ok());
  auto text = WriteGraphText(*parsed->catalog, *parsed->graph);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto reparsed = ParsePlanText(text.value());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_NE(reparsed->graph, nullptr);
  EXPECT_EQ(reparsed->graph->ToString(), parsed->graph->ToString());
  auto text2 = WriteGraphText(*reparsed->catalog, *reparsed->graph);
  ASSERT_TRUE(text2.ok());
  EXPECT_EQ(text.value(), text2.value());
}

TEST(PlanTextTest, GraphErrorsCarryLineNumbers) {
  const struct {
    const char* text;
    const char* needle;
  } cases[] = {
      {"relation a 1\nrelation b 2\ngraph (a ghost)\n",
       "line 3: unknown relation 'ghost'"},
      {"relation a 1\nrelation b 2\ngraph a b\n",
       "line 3: expected '(' to open a join edge"},
      {"relation a 1\nrelation b 2\ngraph (a)\n",
       "line 3: expected two relation names"},
      {"relation a 1\nrelation b 2\ngraph (a b\n",
       "line 3: expected ')' to close the join edge"},
      {"relation a 1\nrelation b 2\ngraph (a b) (a b)\n", "line 3:"},
      {"relation a 1\nrelation b 2\ngraph (a a)\n", "line 3:"},
  };
  for (const auto& c : cases) {
    auto bad = ParsePlanText(c.text);
    ASSERT_FALSE(bad.ok()) << c.text;
    EXPECT_NE(bad.status().message().find(c.needle), std::string::npos)
        << c.text << " -> " << bad.status().ToString();
  }
}

TEST(PlanTextTest, PlanAndGraphAreMutuallyExclusive) {
  EXPECT_FALSE(
      ParsePlanText("relation a 1\nrelation b 2\n"
                    "plan (join a b)\ngraph (a b)\n")
          .ok());
  EXPECT_FALSE(
      ParsePlanText("relation a 1\nrelation b 2\n"
                    "graph (a b)\nplan (join a b)\n")
          .ok());
  EXPECT_FALSE(
      ParsePlanText("relation a 1\nrelation b 2\n"
                    "graph (a b)\ngraph (a b)\n")
          .ok());
  EXPECT_FALSE(
      ParsePlanText("relation a 1\ngraph\nrelation b 2\n").ok());
}

TEST(PlanTextTest, WriteGraphTextValidatesTheCatalogSize) {
  auto parsed = ParsePlanText(kGraphExample);
  ASSERT_TRUE(parsed.ok());
  QueryGraph wrong(2);
  ASSERT_TRUE(wrong.AddJoin(0, 1).ok());
  EXPECT_FALSE(WriteGraphText(*parsed->catalog, wrong).ok());
}

TEST(PlanTextTest, ErrorsCarryLineNumbers) {
  auto bad = ParsePlanText("relation r\nplan r\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 1"), std::string::npos);
}

TEST(PlanTextTest, RejectsUnknownKeyword) {
  auto bad = ParsePlanText("table r 100\nplan r\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("unknown keyword"),
            std::string::npos);
}

TEST(PlanTextTest, RejectsUnknownRelation) {
  auto bad = ParsePlanText("relation r 100\nplan (join r ghost)\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("ghost"), std::string::npos);
}

TEST(PlanTextTest, RejectsRelationScannedTwice) {
  auto bad = ParsePlanText("relation r 100\nplan (join r r)\n");
  EXPECT_FALSE(bad.ok());
}

TEST(PlanTextTest, RejectsMalformedSexpr) {
  EXPECT_FALSE(ParsePlanText("relation a 1\nrelation b 2\n"
                             "plan (join a b\n")
                   .ok());  // missing ')'
  EXPECT_FALSE(ParsePlanText("relation a 1\nplan (cross a a)\n").ok());
  EXPECT_FALSE(ParsePlanText("relation a 1\nrelation b 2\n"
                             "plan (join a b) extra\n")
                   .ok());
  EXPECT_FALSE(ParsePlanText("relation a 1\nplan\n").ok());
}

TEST(PlanTextTest, RejectsDuplicatePlanOrLateRelations) {
  EXPECT_FALSE(
      ParsePlanText("relation a 1\nplan a\nplan a\n").ok());
  EXPECT_FALSE(
      ParsePlanText("relation a 1\nplan a\nrelation b 2\n").ok());
  EXPECT_FALSE(ParsePlanText("relation a 1\n").ok());  // no plan
}

TEST(PlanTextTest, RejectsDuplicateRelation) {
  auto bad = ParsePlanText("relation r 1\nrelation r 2\nplan r\n");
  EXPECT_FALSE(bad.ok());
}

TEST(PlanTextTest, RejectsNegativeAndTrailing) {
  EXPECT_FALSE(ParsePlanText("relation r -5\nplan r\n").ok());
  EXPECT_FALSE(ParsePlanText("relation r 5 junk\nplan r\n").ok());
}

TEST(PlanTextTest, CommentsAndWhitespaceIgnored) {
  auto parsed = ParsePlanText(
      "  # leading comment\n"
      "relation a 10   # trailing comment\n"
      "\n\t\n"
      "relation b 20\n"
      "plan (join a b)  # done\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->plan->num_joins(), 1);
}

TEST(PlanTextTest, DeepNesting) {
  std::string text;
  for (int i = 0; i < 12; ++i) {
    text += "relation r" + std::to_string(i) + " 100\n";
  }
  std::string expr = "r0";
  for (int i = 1; i < 12; ++i) {
    expr = "(join " + expr + " r" + std::to_string(i) + ")";
  }
  text += "plan " + expr + "\n";
  auto parsed = ParsePlanText(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->plan->num_joins(), 11);
  EXPECT_EQ(parsed->plan->Height(), 11);
}

/// Property: any generated plan (random shape, sizes, optional unary
/// operators) survives a write/parse round trip structurally intact.
class PlanTextRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanTextRoundTripTest, GeneratedPlansRoundTrip) {
  WorkloadParams params;
  params.num_joins = 8;
  params.sort_probability = 0.2;
  params.aggregate_probability = 0.2;
  Rng rng(GetParam());
  auto q = GenerateQuery(params, &rng);
  ASSERT_TRUE(q.ok());
  auto text = WritePlanText(*q->catalog, *q->plan);
  ASSERT_TRUE(text.ok());
  auto reparsed = ParsePlanText(text.value());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << text.value();
  EXPECT_EQ(reparsed->plan->ToString(), q->plan->ToString());
  EXPECT_EQ(reparsed->plan->num_joins(), q->plan->num_joins());
  EXPECT_EQ(reparsed->plan->num_unary(), q->plan->num_unary());
  EXPECT_EQ(reparsed->catalog->num_relations(), q->catalog->num_relations());
  // Output cardinalities are recomputed identically during parsing.
  EXPECT_EQ(reparsed->plan->node(reparsed->plan->root()).output.num_tuples,
            q->plan->node(q->plan->root()).output.num_tuples);
  // Idempotence: writing the reparsed plan yields the same text.
  auto text2 = WritePlanText(*reparsed->catalog, *reparsed->plan);
  ASSERT_TRUE(text2.ok());
  EXPECT_EQ(text.value(), text2.value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanTextRoundTripTest,
                         ::testing::Range(uint64_t{0}, uint64_t{12}));

TEST(PlanTextTest, WriterRequiresFinalizedPlan) {
  Catalog catalog;
  Relation r;
  r.name = "r";
  r.num_tuples = 5;
  ASSERT_TRUE(catalog.AddRelation(r).ok());
  PlanTree plan(&catalog);
  ASSERT_TRUE(plan.AddLeaf(0).ok());
  EXPECT_FALSE(WritePlanText(catalog, plan).ok());
}

}  // namespace
}  // namespace mrs
