#include "io/trace_export.h"

#include <string>

#include <gtest/gtest.h>

#include "exec/batch_scheduler.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::PlanFixture;

/// Minimal recursive-descent JSON syntax checker — enough to guarantee the
/// exports parse (objects, arrays, strings with escapes, numbers, the
/// literals). Returns true iff `text` is exactly one valid JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(text_[pos_]))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(Peek())) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker(R"({"a":[1,2.5,-3e2],"b":"x\n","c":null})").Valid());
  EXPECT_TRUE(JsonChecker("[]").Valid());
  EXPECT_FALSE(JsonChecker("{").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1,})").Valid());
  EXPECT_FALSE(JsonChecker("{} trailing").Valid());
}

TEST(TraceExportTest, EmptyReportIsValidVersionedJson) {
  MetricsRegistry registry;
  const std::string json = ExportTraceReport({}, registry.Snapshot());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"traces\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
}

TEST(TraceExportTest, EscapesLabelsAndAttrs) {
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  trace.set_label("quo\"te\\back\nline");
  {
    SpanTimer span(&trace, "stage");
    span.Attr("key\"x", "val\tue");
  }
  const std::string json = TraceToJson(trace);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("quo\\\"te\\\\back\\nline"), std::string::npos) << json;
  EXPECT_NE(json.find("val\\tue"), std::string::npos) << json;
}

TEST(TraceExportTest, SkipsNullTraces) {
  MetricsRegistry registry;
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  trace.set_label("only");
  const std::string json =
      ExportTraceReport({nullptr, &trace, nullptr}, registry.Snapshot());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"label\":\"only\""), std::string::npos);
  EXPECT_EQ(json.find("null"), std::string::npos);
}

TEST(TraceExportTest, DeterministicUnderCountingClock) {
  auto render = [] {
    MetricsRegistry registry;
    registry.GetCounter("fixed")->Increment(3);
    ScheduleTrace trace(ScheduleTrace::CountingClock());
    trace.set_label("q");
    {
      SpanTimer span(&trace, "a", 0);
      span.AttrInt("n", 1);
    }
    { SpanTimer span(&trace, "b", 1); }
    return ExportTraceReport({&trace}, registry.Snapshot());
  };
  const std::string first = render();
  EXPECT_EQ(first, render());
  EXPECT_TRUE(JsonChecker(first).Valid()) << first;
  EXPECT_NE(first.find("\"start_ms\":0.000000"), std::string::npos) << first;
}

TEST(TraceExportTest, BatchEngineTracesExportValidJson) {
  PlanFixture fx = BushyFourWayFixture();
  MetricsRegistry registry;
  BatchSchedulerOptions options;
  options.num_threads = 2;
  options.collect_traces = true;
  options.metrics = &registry;
  CostParams params;
  MachineConfig machine;
  BatchScheduler engine(params, machine, options);
  std::vector<const PlanTree*> plans(8, fx.plan.get());
  BatchOutput output = engine.ScheduleAll(plans);

  std::vector<const ScheduleTrace*> traces;
  for (const auto& item : output.items) {
    ASSERT_TRUE(item.status.ok());
    ASSERT_NE(item.trace, nullptr);
    traces.push_back(item.trace.get());
  }
  const std::string json = ExportTraceReport(traces, registry.Snapshot());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  // Every pipeline stage shows up, and the engine's process metrics ride
  // along in the same report.
  for (const char* stage :
       {"expand", "cost_model", "parallelize", "operator_schedule",
        "tree_schedule"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + stage + "\""),
              std::string::npos)
        << stage;
  }
  EXPECT_NE(json.find("\"batch.items\":8"), std::string::npos);
  EXPECT_NE(json.find("\"batch.item_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"pool.queue_wait_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"parallelize_cache.hits\""), std::string::npos);
}

TEST(TraceExportTest, BatchTracesOffByDefault) {
  PlanFixture fx = BushyFourWayFixture();
  BatchSchedulerOptions options;
  CostParams params;
  MachineConfig machine;
  BatchScheduler engine(params, machine, options);
  BatchOutput output = engine.ScheduleAll({fx.plan.get()});
  ASSERT_EQ(output.items.size(), 1u);
  EXPECT_EQ(output.items[0].trace, nullptr);
}

}  // namespace
}  // namespace mrs
