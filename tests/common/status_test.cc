#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace mrs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad degree");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad degree");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
}

TEST(StatusTest, ServingCodesCarryMessages) {
  Status busy = Status::Unavailable("queue full");
  EXPECT_EQ(busy.code(), StatusCode::kUnavailable);
  EXPECT_EQ(busy.message(), "queue full");
  Status late = Status::DeadlineExceeded("waited too long");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(late.ok());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  MRS_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  MRS_ASSIGN_OR_RETURN(*out, HalfOf(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace mrs
