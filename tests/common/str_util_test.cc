#include "common/str_util.h"

#include <gtest/gtest.h>

#include "common/table_printer.h"

namespace mrs {
namespace {

TEST(StrFormatTest, Formats) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f s=%s", 3, 1.5, "ab"), "x=3 y=1.50 s=ab");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_input(500, 'q');
  EXPECT_EQ(StrFormat("%s!", long_input.c_str()).size(), 501u);
}

TEST(StrJoinTest, Joins) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(FormatMillisTest, AdaptiveUnits) {
  EXPECT_EQ(FormatMillis(0.5), "500 us");
  EXPECT_EQ(FormatMillis(12.34), "12.3 ms");
  EXPECT_EQ(FormatMillis(4567.0), "4.57 s");
  EXPECT_EQ(FormatMillis(126000.0), "2.1 min");
}

TEST(FormatBytesTest, AdaptiveUnits) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(12.5 * 1024), "12.5 KB");
  EXPECT_EQ(FormatBytes(3.0 * 1024 * 1024), "3.0 MB");
  EXPECT_EQ(FormatBytes(2.5 * 1024 * 1024 * 1024), "2.50 GB");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
}

TEST(TablePrinterTest, CsvRendering) {
  TablePrinter t("title");
  t.SetHeader({"P", "resp"});
  t.AddRow({"10", "123.4"});
  t.AddNumericRow({20.0, 99.5}, 1);
  EXPECT_EQ(t.ToCsv(), "P,resp\n10,123.4\n20.0,99.5\n");
}

TEST(TablePrinterTest, RowsPaddedToHeaderWidth) {
  TablePrinter t("");
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});
  EXPECT_EQ(t.ToCsv(), "a,b,c\n1,,\n");
}

}  // namespace
}  // namespace mrs
