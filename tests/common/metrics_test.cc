#include "common/metrics.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mrs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
  g.Reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.ValueAtPercentile(0.5), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  h.Record(1.0);
  h.Record(2.0);
  h.Record(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(HistogramTest, BucketBoundsAreLogSpaced) {
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 0.001);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(1), 0.002);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(10), 0.001 * 1024.0);
}

TEST(HistogramTest, PercentilesClampedToObservedRange) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(5.0);
  // All mass in one bucket: every percentile must report within the
  // observed [min, max] = [5, 5], not the bucket's bounds.
  EXPECT_DOUBLE_EQ(h.ValueAtPercentile(0.50), 5.0);
  EXPECT_DOUBLE_EQ(h.ValueAtPercentile(0.99), 5.0);
}

TEST(HistogramTest, PercentileOrderingOnSpread) {
  Histogram h;
  // 90 fast (~0.1ms), 9 medium (~10ms), 1 slow (~1000ms).
  for (int i = 0; i < 90; ++i) h.Record(0.1);
  for (int i = 0; i < 9; ++i) h.Record(10.0);
  h.Record(1000.0);
  const double p50 = h.ValueAtPercentile(0.50);
  const double p95 = h.ValueAtPercentile(0.95);
  const double p99 = h.ValueAtPercentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LT(p50, 1.0);     // within the fast band
  EXPECT_GE(p95, 1.0);     // in the medium band or above
  EXPECT_LE(p95, 20.0);
  EXPECT_GE(p99, 10.0);
}

TEST(HistogramTest, NegativeAndNanClampToZeroBucket) {
  Histogram h;
  h.Record(-5.0);
  h.Record(std::nan(""));
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, OverflowBucketHoldsHugeValues) {
  Histogram h;
  h.Record(1e15);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.max(), 1e15);
  EXPECT_DOUBLE_EQ(h.ValueAtPercentile(0.99), 1e15);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(1.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.ValueAtPercentile(0.5), 0.0);
}

TEST(HitMissCounterTest, CountsAndRate) {
  HitMissCounter c;
  EXPECT_EQ(c.HitRate(), 0.0);
  c.RecordHit();
  c.RecordHit();
  c.RecordMiss();
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.lookups(), 3u);
  EXPECT_NEAR(c.HitRate(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(c.ToString(), "hits=2 misses=1 (66.7%)");
  c.Reset();
  EXPECT_EQ(c.lookups(), 0u);
}

TEST(MetricsRegistryTest, GetIsIdempotent) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("y"), a);
  EXPECT_EQ(reg.GetGauge("x"), reg.GetGauge("x"));
  EXPECT_EQ(reg.GetHistogram("x"), reg.GetHistogram("x"));
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("zeta")->Increment(3);
  reg.GetCounter("alpha")->Increment(1);
  reg.GetGauge("load")->Set(0.5);
  reg.GetHistogram("lat")->Record(2.0);

  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "zeta");
  EXPECT_EQ(snap.CounterValue("zeta"), 3u);
  EXPECT_EQ(snap.CounterValue("absent"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 0.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "lat");
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].p50, 2.0);
}

TEST(MetricsRegistryTest, CallbackProvidersSumPerName) {
  MetricsRegistry reg;
  uint64_t a = 5;
  uint64_t b = 7;
  auto ha = reg.RegisterCounterCallback("cache.hits", [&] { return a; });
  auto hb = reg.RegisterCounterCallback("cache.hits", [&] { return b; });
  EXPECT_EQ(reg.Snapshot().CounterValue("cache.hits"), 12u);
  a = 6;
  EXPECT_EQ(reg.Snapshot().CounterValue("cache.hits"), 13u);
}

TEST(MetricsRegistryTest, CallbackAndOwnedCounterMerge) {
  MetricsRegistry reg;
  reg.GetCounter("n")->Increment(10);
  auto handle = reg.RegisterCounterCallback("n", [] { return uint64_t{5}; });
  EXPECT_EQ(reg.Snapshot().CounterValue("n"), 15u);
}

TEST(MetricsRegistryTest, CallbackHandleUnregistersOnDestruction) {
  MetricsRegistry reg;
  {
    auto handle =
        reg.RegisterCounterCallback("gone", [] { return uint64_t{9}; });
    EXPECT_EQ(reg.Snapshot().CounterValue("gone"), 9u);
  }
  EXPECT_EQ(reg.Snapshot().CounterValue("gone"), 0u);
}

TEST(MetricsRegistryTest, CallbackHandleMoveTransfersOwnership) {
  MetricsRegistry reg;
  auto a = reg.RegisterCounterCallback("m", [] { return uint64_t{1}; });
  MetricsRegistry::CallbackHandle b = std::move(a);
  EXPECT_EQ(reg.Snapshot().CounterValue("m"), 1u);
  b.Release();
  EXPECT_EQ(reg.Snapshot().CounterValue("m"), 0u);
}

TEST(MetricsRegistryTest, ResetAllZeroesOwnedMetricsOnly) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Increment(4);
  reg.GetHistogram("h")->Record(1.0);
  auto handle = reg.RegisterCounterCallback("cb", [] { return uint64_t{2}; });
  reg.ResetAll();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("c"), 0u);
  EXPECT_EQ(snap.CounterValue("cb"), 2u);  // read-through, unaffected
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
}

TEST(MetricsRegistryTest, SnapshotJsonShape) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Increment(2);
  reg.GetGauge("g")->Set(1.5);
  reg.GetHistogram("h")->Record(3.0);
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\":{\"c\":2}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{\"g\":1.500000}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"h\":{\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsConsistent) {
  MetricsRegistry reg;
  Counter* counter = reg.GetCounter("spins");
  Histogram* hist = reg.GetHistogram("lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Record(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(hist->sum(), static_cast<double>(kThreads * kPerThread));
}

}  // namespace
}  // namespace mrs
