#include "common/rng.h"

#include <algorithm>
#include <set>
#include <thread>

#include <gtest/gtest.h>

namespace mrs {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<size_t>(rng.UniformInt(0, 7))]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 80);  // within 10% of expectation
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(3.0, 4.5);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 4.5);
  }
}

TEST(RngTest, LogUniformRangeAndSpread) {
  Rng rng(23);
  int low_decade = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.LogUniform(1e3, 1e5);
    EXPECT_GE(v, 1e3);
    EXPECT_LE(v, 1e5);
    if (v < 1e4) ++low_decade;
  }
  // Log-uniform: each decade gets ~half the mass.
  EXPECT_NEAR(low_decade, 5000, 400);
}

TEST(RngTest, LogUniformDegenerate) {
  Rng rng(29);
  EXPECT_DOUBLE_EQ(rng.LogUniform(42.0, 42.0), 42.0);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(37);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(41);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(47);
  Rng child = a.Fork();
  // The child stream differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

/// Rng holds all of its state in the instance — there is no process-global
/// generator — so equally-seeded streams advanced concurrently on separate
/// threads produce exactly the sequence a lone instance produces. This is
/// the invariant the batch scheduling engine's per-item streams rely on.
TEST(RngTest, ConcurrentStreamsWithSameSeedAreIdentical) {
  constexpr int kThreads = 8;
  constexpr int kDraws = 4096;
  constexpr uint64_t kSeed = 9607;

  std::vector<uint64_t> expected;
  expected.reserve(kDraws);
  Rng reference(kSeed);
  for (int i = 0; i < kDraws; ++i) expected.push_back(reference.Next());

  std::vector<std::vector<uint64_t>> drawn(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&drawn, t] {
      Rng rng(kSeed);
      drawn[static_cast<size_t>(t)].reserve(kDraws);
      for (int i = 0; i < kDraws; ++i) {
        drawn[static_cast<size_t>(t)].push_back(rng.Next());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(drawn[static_cast<size_t>(t)], expected) << "thread " << t;
  }
}

}  // namespace
}  // namespace mrs
