#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mrs {
namespace {

TEST(RunningStatTest, EmptyDefaults) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesCombinedStream) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(PercentileTest, Basics) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.9), 9.0);
}

TEST(PercentileTest, EmptyAndClamping) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
  std::vector<double> v = {3, 1};
  EXPECT_DOUBLE_EQ(Percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 2.0), 3.0);
}

TEST(GeometricMeanTest, KnownValue) {
  EXPECT_NEAR(GeometricMean({1.0, 4.0, 16.0}), 4.0, 1e-12);
}

TEST(GeometricMeanTest, SkipsNonPositive) {
  EXPECT_NEAR(GeometricMean({0.0, -3.0, 4.0, 16.0}), 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(GeometricMean({0.0, -1.0}), 0.0);
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
}

}  // namespace
}  // namespace mrs
