#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace mrs {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogThreshold(LogLevel::kWarning); }
};

TEST_F(LoggingTest, ThresholdRoundTrips) {
  EXPECT_EQ(GetLogThreshold(), LogLevel::kWarning);  // documented default
  SetLogThreshold(LogLevel::kDebug);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kDebug);
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
}

TEST_F(LoggingTest, NonFatalLogsDoNotAbort) {
  SetLogThreshold(LogLevel::kFatal);  // silence output during the test
  MRS_LOG(Debug) << "debug " << 1;
  MRS_LOG(Info) << "info " << 2.5;
  MRS_LOG(Warning) << "warning " << "text";
  MRS_LOG(Error) << "error";
  SUCCEED();
}

TEST_F(LoggingTest, CheckPassesOnTrue) {
  MRS_CHECK(1 + 1 == 2) << "never printed";
  MRS_CHECK_OK(Status::OK());
  SUCCEED();
}

TEST_F(LoggingTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ MRS_CHECK(false) << "boom"; }, "Check failed");
}

TEST_F(LoggingTest, CheckOkAbortsOnError) {
  EXPECT_DEATH({ MRS_CHECK_OK(Status::Internal("bad")); },
               "Check failed \\(status\\)");
}

}  // namespace
}  // namespace mrs
