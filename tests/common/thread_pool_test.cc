#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mrs {
namespace {

TEST(ThreadPoolTest, ZeroTaskWaitAllReturnsImmediately) {
  ThreadPool pool(4);
  pool.WaitAll();  // must not block
  EXPECT_EQ(pool.completed_tasks(), 0u);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 1000;
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&runs, i] { runs[static_cast<size_t>(i)].fetch_add(1); });
  }
  pool.WaitAll();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[static_cast<size_t>(i)].load(), 1) << "task " << i;
  }
  EXPECT_EQ(pool.completed_tasks(), static_cast<uint64_t>(kTasks));
}

/// Oversubscription: tasks ≫ threads; everything still runs, on a
/// single-worker pool too.
TEST(ThreadPoolTest, OversubscriptionDrainsCompletely) {
  for (int threads : {1, 2, 16}) {
    ThreadPool pool(threads);
    constexpr int kTasks = 20000;
    std::atomic<int64_t> sum{0};
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
    }
    pool.WaitAll();
    EXPECT_EQ(sum.load(), static_cast<int64_t>(kTasks) * (kTasks - 1) / 2)
        << "threads=" << threads;
  }
}

/// The result written by each task depends only on the task, not on the
/// order tasks were submitted in: submitting a permuted task list produces
/// the same output vector.
TEST(ThreadPoolTest, SubmitOrderIndependence) {
  constexpr int kTasks = 256;
  auto run = [](const std::vector<int>& order) {
    ThreadPool pool(4);
    std::vector<int> out(kTasks, -1);
    for (int i : order) {
      pool.Submit([&out, i] { out[static_cast<size_t>(i)] = 3 * i + 1; });
    }
    pool.WaitAll();
    return out;
  };
  std::vector<int> forward(kTasks);
  std::iota(forward.begin(), forward.end(), 0);
  std::vector<int> backward(forward.rbegin(), forward.rend());
  std::vector<int> strided;
  for (int s = 0; s < 7; ++s) {
    for (int i = s; i < kTasks; i += 7) strided.push_back(i);
  }
  const std::vector<int> a = run(forward);
  EXPECT_EQ(a, run(backward));
  EXPECT_EQ(a, run(strided));
}

TEST(ThreadPoolTest, ExceptionPropagatesToWaitAll) {
  ThreadPool pool(2);
  std::atomic<int> after{0};
  pool.Submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&after] { after.fetch_add(1); });
  }
  EXPECT_THROW(pool.WaitAll(), std::runtime_error);
  // The failure neither cancels sibling tasks nor poisons the pool.
  EXPECT_EQ(after.load(), 50);
  pool.Submit([&after] { after.fetch_add(1); });
  pool.WaitAll();  // no rethrow: the error was consumed above
  EXPECT_EQ(after.load(), 51);
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsReported) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.WaitAll(), std::runtime_error);
  pool.WaitAll();  // subsequent waits are clean
}

/// Destroying a pool with queued tasks drains them (destruction joins
/// after completion, it does not drop work).
TEST(ThreadPoolTest, DestructionRunsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        ran.fetch_add(1);
      });
    }
    // No WaitAll: the destructor must drain.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, WaitAllIsReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 40; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.WaitAll();
    EXPECT_EQ(count.load(), 40 * (batch + 1));
  }
}

TEST(ThreadPoolTest, SubmitFromInsideATask) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    count.fetch_add(1);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  });
  pool.WaitAll();
  EXPECT_EQ(count.load(), 11);
}

}  // namespace
}  // namespace mrs
