#include <algorithm>

#include <gtest/gtest.h>

#include "core/tree_schedule.h"
#include "exec/fluid_simulator.h"
#include "workload/experiment.h"

namespace mrs {
namespace {

/// Model-level invariants checked across a (J, P, f, eps) sweep on real
/// generated queries — the union of the paper's assumptions A1-A5 as they
/// surface in schedules.
class ModelPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<int, int, double, double>> {};

TEST_P(ModelPropertyTest, ScheduleInvariantsHold) {
  const auto [joins, sites, f, eps] = GetParam();
  ExperimentConfig config;
  config.queries_per_point = 1;
  config.workload.num_joins = joins;
  config.machine.num_sites = sites;
  config.granularity = f;
  config.overlap = eps;

  auto artifacts = PrepareQuery(config, 0);
  ASSERT_TRUE(artifacts.ok());
  const OverlapUsageModel usage(eps);
  TreeScheduleOptions options;
  options.granularity = f;
  auto tree = TreeSchedule(artifacts->op_tree, artifacts->task_tree,
                           artifacts->costs, config.cost, config.machine,
                           usage, options);
  ASSERT_TRUE(tree.ok());

  for (const auto& phase : tree->phases) {
    ASSERT_TRUE(phase.schedule.Validate(phase.ops).ok());
    for (const auto& op : phase.ops) {
      // Degrees within machine size.
      EXPECT_GE(op.degree, 1);
      EXPECT_LE(op.degree, sites);
      // Clone times respect the §4.1 usage bounds.
      for (int k = 0; k < op.degree; ++k) {
        EXPECT_TRUE(SequentialTimeWithinBounds(
            op.clones[static_cast<size_t>(k)],
            op.t_seq[static_cast<size_t>(k)], 1e-6));
      }
      // Floating ops honor the CG_f condition (Prop 4.1) unless serial.
      // Builds are sized join-aware (default BuildDegreePolicy): their
      // CG_f condition applies to the combined build+probe cost.
      if (!op.rooted && op.degree > 1) {
        OperatorCost cost = artifacts->costs[static_cast<size_t>(op.op_id)];
        if (op.kind == OperatorKind::kBuild) {
          for (const auto& other : artifacts->op_tree.ops()) {
            if (other.kind == OperatorKind::kProbe &&
                other.blocking_input == op.op_id) {
              const OperatorCost& probe =
                  artifacts->costs[static_cast<size_t>(other.id)];
              cost.processing += probe.processing;
              cost.data_bytes += probe.data_bytes;
            }
          }
        }
        EXPECT_LE(config.cost.CommunicationArea(op.degree, cost.data_bytes),
                  f * cost.ProcessingArea() + 1e-6)
            << "op" << op.op_id << " degree " << op.degree;
      }
    }
    // Eq. (3) decomposition: phase makespan = max site time, bounded below
    // by each op's t_par.
    double max_t_par = 0.0;
    for (const auto& op : phase.ops) {
      max_t_par = std::max(max_t_par, op.t_par);
    }
    EXPECT_GE(phase.makespan + 1e-9, max_t_par);
  }

  // Probes co-located with their builds (constraint B across phases).
  for (const auto& op : artifacts->op_tree.ops()) {
    if (op.kind == OperatorKind::kProbe) {
      EXPECT_EQ(tree->HomeOf(op.id), tree->HomeOf(op.blocking_input));
    }
  }

  // Operational agreement: the fluid simulator reproduces eq. (2)/(3).
  FluidSimulator sim(usage);
  auto simulated = sim.Simulate(*tree);
  ASSERT_TRUE(simulated.ok());
  EXPECT_NEAR(simulated->response_time, tree->response_time,
              1e-6 * std::max(1.0, tree->response_time));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelPropertyTest,
    ::testing::Combine(::testing::Values(2, 8, 15),
                       ::testing::Values(4, 20, 60),
                       ::testing::Values(0.3, 0.7),
                       ::testing::Values(0.1, 0.5, 0.9)));

/// Monotonicity of the coarse-grain response in f on a fixed query: a
/// larger granularity bound can only expand the space of allowed
/// parallelizations (and our A4 guard keeps T_par non-increasing), so the
/// average response should not increase... per-phase interactions can
/// occasionally flip a single query, so we assert on the average of
/// several queries.
TEST(GranularityMonotonicityTest, AverageResponseNonIncreasingInF) {
  ExperimentConfig config;
  config.queries_per_point = 6;
  config.workload.num_joins = 10;
  config.machine.num_sites = 20;
  config.overlap = 0.3;
  double prev = 0.0;
  bool first = true;
  for (double f : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    config.granularity = f;
    auto stat = MeasureAverageResponse(SchedulerKind::kTreeSchedule, config);
    ASSERT_TRUE(stat.ok());
    if (!first) {
      EXPECT_LE(stat->mean(), prev * 1.02)
          << "response should not grow materially with f";
    }
    prev = stat->mean();
    first = false;
  }
}

}  // namespace
}  // namespace mrs
