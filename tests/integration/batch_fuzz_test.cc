// Randomized invariant fuzzing of the batch scheduling engine: for random
// workloads, overlap eps, granularity f, machine sizes, and thread counts,
// every schedule the engine emits must still satisfy the paper's structural
// constraints and the Theorem 5.1(a) bound. The checkers are the ones the
// bounds property suite uses: Schedule::Validate (constraints A and rooted
// placement) and testing_util::ListScheduleLowerBound (the analytic LB of
// the 2d+1 theorem).
//
// Replayability: every check runs under a SCOPED_TRACE carrying the full
// (seed, eps, f, P, threads, joins) tuple, so a failure names the exact
// case. Set MRS_FUZZ_SEED=<seed> to re-root the random sweep at a failing
// seed, and see tests/data/fuzz_corpus.txt for pinned known-interesting
// tuples that run on every ctest invocation.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "exec/batch_scheduler.h"
#include "plan/operator_tree.h"
#include "test_util.h"
#include "workload/generator.h"

namespace mrs {
namespace {

using testing_util::ListScheduleLowerBound;

/// One fully pinned fuzz case: everything needed to rebuild the batch.
struct FuzzCase {
  uint64_t seed = 0;  ///< batch seed handed to ScheduleGenerated
  double eps = 0.5;
  double f = 0.7;
  int sites = 16;
  int threads = 2;
  int joins = 6;
  double sort_probability = 0.0;
  double aggregate_probability = 0.0;

  std::string ToString() const {
    return StrFormat("(seed=%llu eps=%g f=%g P=%d threads=%d joins=%d "
                     "sortp=%g aggp=%g)",
                     static_cast<unsigned long long>(seed), eps, f, sites,
                     threads, joins, sort_probability,
                     aggregate_probability);
  }
};

/// Runs one batch for `c` and checks every schedule against constraint A,
/// rooted placement, the Theorem 5.1(a) bound, and response-time
/// additivity. All assertions inherit the case's replay tuple via
/// SCOPED_TRACE.
void CheckCase(const FuzzCase& c) {
  SCOPED_TRACE("fuzz case " + c.ToString() +
               " — replay via MRS_FUZZ_SEED or tests/data/fuzz_corpus.txt");
  WorkloadParams workload;
  workload.num_joins = c.joins;
  workload.sort_probability = c.sort_probability;
  workload.aggregate_probability = c.aggregate_probability;
  MachineConfig machine;
  machine.num_sites = c.sites;
  const CostParams params;

  BatchSchedulerOptions options;
  options.num_threads = c.threads;
  options.overlap_eps = c.eps;
  options.tree.granularity = c.f;
  BatchScheduler engine(params, machine, options);

  const int count = 8;
  BatchOutput output = engine.ScheduleGenerated(workload, c.seed, count);
  ASSERT_EQ(output.items.size(), static_cast<size_t>(count));

  for (const BatchItemResult& item : output.items) {
    ASSERT_TRUE(item.status.ok()) << item.status.ToString();
    const TreeScheduleResult& result = item.schedule;
    ASSERT_FALSE(result.phases.empty());
    double phase_sum = 0.0;
    for (const PhaseSchedule& phase : result.phases) {
      // Constraint A + rooted placement, via the schedule validator.
      ASSERT_TRUE(phase.schedule.Validate(phase.ops).ok())
          << "phase " << phase.phase;
      // Theorem 5.1(a): the phase's list schedule stays within (2d+1)
      // of the analytic lower bound for its parallelization.
      const double lb = ListScheduleLowerBound(phase.ops, machine.num_sites);
      EXPECT_LE(phase.makespan, (2.0 * machine.dims + 1.0) * lb + 1e-6)
          << "phase " << phase.phase;
      phase_sum += phase.makespan;
      // Every rooted op in this phase sits exactly at its declared home.
      for (const ParallelizedOp& op : phase.ops) {
        if (op.rooted) {
          EXPECT_EQ(phase.schedule.HomeOf(op.op_id), op.home);
        }
      }
    }
    EXPECT_NEAR(result.response_time, phase_sum, 1e-9);
  }
}

/// Draws one random case from `rng` over the sweep's parameter ranges.
FuzzCase DrawCase(Rng* rng) {
  FuzzCase c;
  c.joins = 2 + static_cast<int>(rng->Index(10));
  c.sort_probability = rng->Bernoulli(0.3) ? 0.2 : 0.0;
  c.aggregate_probability = rng->Bernoulli(0.3) ? 0.2 : 0.0;
  c.eps = rng->UniformDouble();
  c.f = rng->UniformDouble(0.3, 0.9);
  c.sites = 4 + static_cast<int>(rng->Index(60));
  c.threads = 1 << rng->Index(4);  // 1, 2, 4, or 8
  c.seed = rng->Next();
  return c;
}

class BatchFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchFuzzTest, SchedulesSatisfyConstraintsAndTheoremBound) {
  // MRS_FUZZ_SEED re-roots the sweep so a failing tuple printed by
  // SCOPED_TRACE can be regenerated exactly.
  const uint64_t sweep_seed = testing_util::FuzzSeed(GetParam());
  Rng rng(sweep_seed);
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE(::testing::Message() << "sweep seed " << sweep_seed
                                      << " round " << round);
    CheckCase(DrawCase(&rng));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchFuzzTest,
                         ::testing::Values(1001u, 2002u, 3003u, 4004u));

/// Pinned corpus: tuples that exercised interesting corners when first
/// found (congestion-bound phases, single-site-adjacent machines, deep
/// unary chains). Checked into tests/data/fuzz_corpus.txt, one
/// `seed eps f sites threads joins sortp aggp` line each, so regressions
/// replay without any randomness.
TEST(BatchFuzzCorpusTest, PinnedTuplesStillHold) {
  const std::string path = std::string(MRS_TEST_DATA_DIR) +
                           "/fuzz_corpus.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing corpus file: " << path;
  std::string line;
  int cases = 0;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    FuzzCase c;
    if (!(ls >> c.seed >> c.eps >> c.f >> c.sites >> c.threads >> c.joins >>
          c.sort_probability >> c.aggregate_probability)) {
      std::istringstream check(line);
      std::string stray;
      ASSERT_FALSE(static_cast<bool>(check >> stray))
          << "malformed corpus line " << line_no << ": " << line;
      continue;  // blank / comment-only line
    }
    SCOPED_TRACE(::testing::Message()
                 << "corpus line " << line_no << " of " << path);
    CheckCase(c);
    ++cases;
  }
  EXPECT_GE(cases, 3) << "corpus should pin at least three tuples";
}

/// Direct constraint-B check on one deterministic batch: rebuild the
/// operator tree for each generated plan and verify each blocked op's home
/// equals its blocking producer's home.
TEST(BatchFuzzTest, ConstraintBAcrossPhases) {
  WorkloadParams workload;
  workload.num_joins = 8;
  const CostParams params;
  MachineConfig machine;
  machine.num_sites = 20;

  // Generate the queries outside the engine so the operator trees are
  // available for the cross-check (same plans via ScheduleAll).
  std::vector<GeneratedQuery> queries;
  Rng master(4242);
  for (int i = 0; i < 20; ++i) {
    Rng stream = master.Fork();
    auto query = GenerateQuery(workload, &stream);
    ASSERT_TRUE(query.ok());
    queries.push_back(std::move(query).value());
  }
  std::vector<const PlanTree*> plans;
  for (const auto& q : queries) plans.push_back(q.plan.get());

  BatchSchedulerOptions options;
  options.num_threads = 4;
  BatchScheduler engine(params, machine, options);
  BatchOutput output = engine.ScheduleAll(plans);

  for (size_t i = 0; i < plans.size(); ++i) {
    ASSERT_TRUE(output.items[i].status.ok());
    auto op_tree = OperatorTree::FromPlan(*plans[i]);
    ASSERT_TRUE(op_tree.ok());
    const TreeScheduleResult& result = output.items[i].schedule;
    for (const PhysicalOp& op : op_tree->ops()) {
      if (op.blocking_input < 0) continue;
      const std::vector<int> own = result.HomeOf(op.id);
      const std::vector<int> producer = result.HomeOf(op.blocking_input);
      ASSERT_FALSE(own.empty());
      EXPECT_EQ(own, producer)
          << "op " << op.id << " must run at the home of its blocking "
          << "producer " << op.blocking_input;
    }
  }
}

}  // namespace
}  // namespace mrs
