// Randomized invariant fuzzing of the batch scheduling engine: for random
// workloads, overlap eps, granularity f, machine sizes, and thread counts,
// every schedule the engine emits must still satisfy the paper's structural
// constraints and the Theorem 5.1(a) bound. The checkers are the ones the
// bounds property suite uses: Schedule::Validate (constraints A and rooted
// placement) and testing_util::ListScheduleLowerBound (the analytic LB of
// the 2d+1 theorem).

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/batch_scheduler.h"
#include "plan/operator_tree.h"
#include "test_util.h"
#include "workload/generator.h"

namespace mrs {
namespace {

using testing_util::ListScheduleLowerBound;

class BatchFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchFuzzTest, SchedulesSatisfyConstraintsAndTheoremBound) {
  Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    // Random scheduling context.
    WorkloadParams workload;
    workload.num_joins = 2 + static_cast<int>(rng.Index(10));
    workload.sort_probability = rng.Bernoulli(0.3) ? 0.2 : 0.0;
    workload.aggregate_probability = rng.Bernoulli(0.3) ? 0.2 : 0.0;
    const double eps = rng.UniformDouble();
    const double f = rng.UniformDouble(0.3, 0.9);
    MachineConfig machine;
    machine.num_sites = 4 + static_cast<int>(rng.Index(60));
    const int threads = 1 << rng.Index(4);  // 1, 2, 4, or 8
    const CostParams params;

    BatchSchedulerOptions options;
    options.num_threads = threads;
    options.overlap_eps = eps;
    options.tree.granularity = f;
    BatchScheduler engine(params, machine, options);

    const uint64_t batch_seed = rng.Next();
    const int count = 8;
    BatchOutput output =
        engine.ScheduleGenerated(workload, batch_seed, count);
    ASSERT_EQ(output.items.size(), static_cast<size_t>(count));

    for (const BatchItemResult& item : output.items) {
      ASSERT_TRUE(item.status.ok())
          << "round " << round << ": " << item.status.ToString();
      const TreeScheduleResult& result = item.schedule;
      ASSERT_FALSE(result.phases.empty());
      double phase_sum = 0.0;
      for (const PhaseSchedule& phase : result.phases) {
        // Constraint A + rooted placement, via the schedule validator.
        ASSERT_TRUE(phase.schedule.Validate(phase.ops).ok())
            << "round " << round << " phase " << phase.phase;
        // Theorem 5.1(a): the phase's list schedule stays within (2d+1)
        // of the analytic lower bound for its parallelization.
        const double lb =
            ListScheduleLowerBound(phase.ops, machine.num_sites);
        EXPECT_LE(phase.makespan,
                  (2.0 * machine.dims + 1.0) * lb + 1e-6)
            << "round " << round << " phase " << phase.phase
            << " eps=" << eps << " f=" << f << " P=" << machine.num_sites;
        phase_sum += phase.makespan;
        // Every rooted op in this phase sits exactly at its declared home.
        for (const ParallelizedOp& op : phase.ops) {
          if (op.rooted) {
            EXPECT_EQ(phase.schedule.HomeOf(op.op_id), op.home);
          }
        }
      }
      EXPECT_NEAR(result.response_time, phase_sum, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchFuzzTest,
                         ::testing::Values(1001u, 2002u, 3003u, 4004u));

/// Direct constraint-B check on one deterministic batch: rebuild the
/// operator tree for each generated plan and verify each blocked op's home
/// equals its blocking producer's home.
TEST(BatchFuzzTest, ConstraintBAcrossPhases) {
  WorkloadParams workload;
  workload.num_joins = 8;
  const CostParams params;
  MachineConfig machine;
  machine.num_sites = 20;

  // Generate the queries outside the engine so the operator trees are
  // available for the cross-check (same plans via ScheduleAll).
  std::vector<GeneratedQuery> queries;
  Rng master(4242);
  for (int i = 0; i < 20; ++i) {
    Rng stream = master.Fork();
    auto query = GenerateQuery(workload, &stream);
    ASSERT_TRUE(query.ok());
    queries.push_back(std::move(query).value());
  }
  std::vector<const PlanTree*> plans;
  for (const auto& q : queries) plans.push_back(q.plan.get());

  BatchSchedulerOptions options;
  options.num_threads = 4;
  BatchScheduler engine(params, machine, options);
  BatchOutput output = engine.ScheduleAll(plans);

  for (size_t i = 0; i < plans.size(); ++i) {
    ASSERT_TRUE(output.items[i].status.ok());
    auto op_tree = OperatorTree::FromPlan(*plans[i]);
    ASSERT_TRUE(op_tree.ok());
    const TreeScheduleResult& result = output.items[i].schedule;
    for (const PhysicalOp& op : op_tree->ops()) {
      if (op.blocking_input < 0) continue;
      const std::vector<int> own = result.HomeOf(op.id);
      const std::vector<int> producer = result.HomeOf(op.blocking_input);
      ASSERT_FALSE(own.empty());
      EXPECT_EQ(own, producer)
          << "op " << op.id << " must run at the home of its blocking "
          << "producer " << op.blocking_input;
    }
  }
}

}  // namespace
}  // namespace mrs
