#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/exhaustive.h"
#include "core/malleable.h"
#include "core/operator_schedule.h"
#include "resource/usage_model.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::ListScheduleLowerBound;
using testing_util::MakeOp;

/// Random instance generator for independent-operator scheduling.
std::vector<ParallelizedOp> RandomInstance(Rng* rng, int max_ops, int dims,
                                           int max_degree,
                                           const OverlapUsageModel& usage) {
  std::vector<ParallelizedOp> ops;
  const int m = 2 + static_cast<int>(rng->Index(
                        static_cast<size_t>(max_ops - 1)));
  for (int i = 0; i < m; ++i) {
    const int degree =
        1 + static_cast<int>(rng->Index(static_cast<size_t>(max_degree)));
    std::vector<WorkVector> clones;
    for (int k = 0; k < degree; ++k) {
      WorkVector w(static_cast<size_t>(dims));
      for (int r = 0; r < dims; ++r) {
        // Mixed magnitudes stress the packing more than uniform ones.
        w[static_cast<size_t>(r)] =
            rng->Bernoulli(0.3) ? rng->UniformDouble(5.0, 20.0)
                                : rng->UniformDouble(0.0, 2.0);
      }
      clones.push_back(std::move(w));
    }
    ops.push_back(MakeOp(i, std::move(clones), usage));
  }
  return ops;
}

/// Theorem 5.1(a) against the *exact* optimum on small instances: the
/// list schedule is within (2d+1) of the true optimal makespan for the
/// same parallelization. (Empirically the ratio is far smaller — the
/// bench `ablation_bounds` quantifies it.)
class ExactRatioPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double, uint64_t>> {};

TEST_P(ExactRatioPropertyTest, ListWithinTwoDPlusOneOfExactOptimum) {
  const auto [dims, eps, param_seed] = GetParam();
  const uint64_t seed = testing_util::FuzzSeed(param_seed);
  SCOPED_TRACE(::testing::Message()
               << "replay with MRS_FUZZ_SEED=" << seed << " (dims=" << dims
               << " eps=" << eps << ")");
  OverlapUsageModel usage(eps);
  Rng rng(seed);
  const int p = 3;
  std::vector<ParallelizedOp> ops =
      RandomInstance(&rng, /*max_ops=*/6, dims, /*max_degree=*/2, usage);
  // Keep the exhaustive search tractable.
  size_t clones = 0;
  for (const auto& op : ops) clones += static_cast<size_t>(op.degree);
  if (clones > 9) ops.resize(4);

  auto list = OperatorSchedule(ops, p, dims);
  ASSERT_TRUE(list.ok());
  auto exact = ExhaustiveOptimalMakespan(ops, p, dims);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(exact->proven_optimal);
  ASSERT_GT(exact->makespan, 0.0);
  const double ratio = list->Makespan() / exact->makespan;
  EXPECT_GE(ratio, 1.0 - 1e-9);
  EXPECT_LE(ratio, 2.0 * dims + 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactRatioPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(11u, 22u, 33u, 44u)));

/// Theorem 5.1(a) against the analytic lower bound on larger instances.
class AnalyticBoundPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(AnalyticBoundPropertyTest, ListWithinTwoDPlusOneOfLB) {
  const auto [dims, p, param_seed] = GetParam();
  const uint64_t seed = testing_util::FuzzSeed(param_seed);
  SCOPED_TRACE(::testing::Message()
               << "replay with MRS_FUZZ_SEED=" << seed << " (dims=" << dims
               << " P=" << p << ")");
  OverlapUsageModel usage(0.5);
  Rng rng(seed);
  std::vector<ParallelizedOp> ops = RandomInstance(
      &rng, /*max_ops=*/30, dims, /*max_degree=*/std::min(p, 5), usage);
  auto list = OperatorSchedule(ops, p, dims);
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(list->Validate(ops).ok());
  const double lb = ListScheduleLowerBound(ops, p);
  EXPECT_LE(list->Makespan(), (2.0 * dims + 1.0) * lb + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnalyticBoundPropertyTest,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Values(4, 16, 64),
                       ::testing::Values(101u, 202u, 303u)));

/// Theorem 7.1: the malleable pipeline (GF selection + list scheduling)
/// stays within (2d+1) of its own LB, which lower-bounds the optimum over
/// all parallelizations.
class MalleableBoundPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(MalleableBoundPropertyTest, WithinTwoDPlusOne) {
  const auto [eps, param_seed] = GetParam();
  const uint64_t seed = testing_util::FuzzSeed(param_seed);
  SCOPED_TRACE(::testing::Message()
               << "replay with MRS_FUZZ_SEED=" << seed << " (eps=" << eps
               << ")");
  const int dims = 3;
  OverlapUsageModel usage(eps);
  CostParams params;
  Rng rng(seed);
  std::vector<OperatorCost> costs;
  const int m = 3 + static_cast<int>(rng.Index(8));
  for (int i = 0; i < m; ++i) {
    OperatorCost c;
    c.op_id = i;
    c.processing = WorkVector(
        {rng.UniformDouble(10, 3000), rng.UniformDouble(0, 2000), 0.0});
    c.data_bytes = rng.UniformDouble(0, 500000);
    costs.push_back(std::move(c));
  }
  const int p = 12;
  auto selection =
      SelectMalleableParallelization(costs, {}, params, usage, p);
  ASSERT_TRUE(selection.ok());
  auto schedule = MalleableSchedule(costs, {}, params, usage, p, dims);
  ASSERT_TRUE(schedule.ok());
  EXPECT_LE(schedule->Makespan(),
            (2.0 * dims + 1.0) * selection->lower_bound + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MalleableBoundPropertyTest,
    ::testing::Combine(::testing::Values(0.1, 0.5, 0.9),
                       ::testing::Values(7u, 77u, 777u, 7777u)));

/// Lemma 7.2 ingredient: work vectors are componentwise non-decreasing in
/// the degree of parallelism under our communication model.
TEST(MalleableFoundationTest, TotalWorkNonDecreasingInDegree) {
  CostParams params;
  OperatorCost c;
  c.op_id = 0;
  c.processing = WorkVector({800.0, 300.0, 0.0});
  c.data_bytes = 64000.0;
  WorkVector prev;
  for (int n = 1; n <= 16; ++n) {
    const WorkVector total = SumVectors(SplitIntoClones(c, n, params));
    if (n > 1) {
      // Allow floating-point slack: summing n shares of W/n reassembles W
      // only to ~1 ulp.
      for (size_t i = 0; i < total.dim(); ++i) {
        EXPECT_LE(prev[i], total[i] + 1e-9)
            << "W(" << n - 1 << ")[" << i << "] should be <= W(" << n
            << ")[" << i << "]";
      }
    }
    prev = total;
  }
}

}  // namespace
}  // namespace mrs
