// Differential execution harness: every plan is scheduled by the engines
// (TREESCHEDULE, LISTSCHEDULE task-wave and pipelined, SYNCHRONOUS) and
// then *run* on the execute backend, whose virtual timeline — an independent realization of
// the optimal-stretch fluid discipline (per-clone remaining fractions,
// exec/execute_backend.cc) — must agree with the fluid simulator's
// SimulateTimed (mutated remaining work vectors, exec/fluid_simulator.cc)
// within tolerance on every site finish time, busy vector, clone
// completion, and the phase makespan. The SYNCHRONOUS baseline emits task
// placements rather than a Schedule, so its plan is reconstructed with
// ParallelizeRooted + PlaceAt at each task's start instant and compared on
// the same shared timeline.
//
// Replayability matches engine_differential_test.cc: SCOPED_TRACE carries
// the case tuple, MRS_FUZZ_SEED re-roots the sweep, and the pinned
// tests/data/fuzz_corpus.txt tuples replay verbatim.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/synchronous.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/list_schedule.h"
#include "core/tree_schedule.h"
#include "cost/parallelize.h"
#include "exec/exec_backend.h"
#include "exec/execute_backend.h"
#include "exec/fluid_simulator.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "test_util.h"
#include "workload/generator.h"

namespace mrs {
namespace {

/// Same tuple layout as tests/data/fuzz_corpus.txt (seed eps f sites
/// threads joins sortp aggp); `threads` sizes the execute backend's pool.
struct ExecDiffCase {
  uint64_t seed = 0;
  double eps = 0.5;
  double f = 0.7;
  int sites = 16;
  int threads = 2;
  int joins = 6;
  double sort_probability = 0.0;
  double aggregate_probability = 0.0;

  std::string ToString() const {
    return StrFormat("(seed=%llu eps=%g f=%g P=%d threads=%d joins=%d "
                     "sortp=%g aggp=%g)",
                     static_cast<unsigned long long>(seed), eps, f, sites,
                     threads, joins, sort_probability,
                     aggregate_probability);
  }
};

struct EngineInputs {
  GeneratedQuery query;
  OperatorTree op_tree;
  TaskTree task_tree;
  std::vector<OperatorCost> costs;
};

bool BuildInputs(const ExecDiffCase& c, Rng* stream, EngineInputs* inputs) {
  WorkloadParams workload;
  workload.num_joins = c.joins;
  workload.sort_probability = c.sort_probability;
  workload.aggregate_probability = c.aggregate_probability;
  auto query = GenerateQuery(workload, stream);
  if (!query.ok()) {
    ADD_FAILURE() << "GenerateQuery: " << query.status().ToString();
    return false;
  }
  inputs->query = std::move(query).value();
  auto ops = OperatorTree::FromPlan(*inputs->query.plan);
  if (!ops.ok()) {
    ADD_FAILURE() << "FromPlan: " << ops.status().ToString();
    return false;
  }
  inputs->op_tree = std::move(ops).value();
  auto tasks = TaskTree::FromOperatorTree(&inputs->op_tree);
  if (!tasks.ok()) {
    ADD_FAILURE() << "FromOperatorTree: " << tasks.status().ToString();
    return false;
  }
  inputs->task_tree = std::move(tasks).value();
  CostModel model(CostParams{}, MachineConfig{}.dims);
  auto costs = model.CostAll(inputs->op_tree);
  if (!costs.ok()) {
    ADD_FAILURE() << "CostAll: " << costs.status().ToString();
    return false;
  }
  inputs->costs = std::move(costs).value();
  return true;
}

/// The two timelines must agree everywhere: both implement eq. (2) on
/// remaining work under staggered arrivals, one via fractions, one via
/// mutated vectors, so differences beyond floating-point noise are bugs
/// in either realization.
void ExpectTimelinesAgree(const PhaseSimulation& exec,
                          const PhaseSimulation& sim,
                          const Schedule& schedule) {
  const double scale = std::max(1.0, sim.makespan);
  const double tol = 1e-6 * scale;
  EXPECT_NEAR(exec.makespan, sim.makespan, tol);
  ASSERT_EQ(exec.sites.size(), sim.sites.size());
  for (size_t j = 0; j < sim.sites.size(); ++j) {
    SCOPED_TRACE(::testing::Message() << "site " << j);
    EXPECT_NEAR(exec.sites[j].finish, sim.sites[j].finish, tol);
    ASSERT_EQ(exec.sites[j].busy.dim(), sim.sites[j].busy.dim());
    for (size_t d = 0; d < sim.sites[j].busy.dim(); ++d) {
      EXPECT_NEAR(exec.sites[j].busy[d], sim.sites[j].busy[d], tol)
          << "busy dim " << d;
    }
  }
  ASSERT_EQ(exec.clone_finish.size(), sim.clone_finish.size());
  ASSERT_EQ(exec.clone_finish.size(),
            static_cast<size_t>(schedule.num_placements()));
  for (size_t p = 0; p < sim.clone_finish.size(); ++p) {
    EXPECT_NEAR(exec.clone_finish[p], sim.clone_finish[p], tol)
        << "clone " << p;
    // A clone never finishes before it starts.
    EXPECT_GE(exec.clone_finish[p],
              schedule.placements()[p].start - tol);
  }
}

/// Sanity on the execution records themselves (rows ran, fractions sane,
/// records parallel to the placements).
void ExpectExecutionSane(const ExecutionResult& run,
                         const Schedule& schedule) {
  ASSERT_EQ(run.clones.size(),
            static_cast<size_t>(schedule.num_placements()));
  for (size_t p = 0; p < run.clones.size(); ++p) {
    const CloneExecution& clone = run.clones[p];
    const ClonePlacement& placement = schedule.placements()[p];
    EXPECT_EQ(clone.op_id, placement.op_id);
    EXPECT_EQ(clone.site, placement.site);
    EXPECT_GE(clone.rows_in, 0);
    EXPECT_GE(clone.rows_out, 0);
    EXPECT_GE(clone.measured_ms, 0.0);
    EXPECT_GE(clone.row_fraction, 0.0);
    EXPECT_LE(clone.row_fraction, 1.0);
    EXPECT_LE(clone.virtual_start, clone.virtual_finish);
  }
}

/// Rebuilds the SYNCHRONOUS baseline's placement as a timed Schedule:
/// every stage is a rooted parallelization at its allotted sites, placed
/// at the task's start instant on the shared timeline.
bool ReconstructSyncSchedule(const SynchronousResult& sync,
                             const EngineInputs& inputs,
                             const CostParams& params,
                             const MachineConfig& machine,
                             const OverlapUsageModel& usage,
                             Schedule* schedule) {
  for (const SyncTaskPlacement& task : sync.tasks) {
    for (const SyncStagePlacement& stage : task.stages) {
      auto op = ParallelizeRooted(
          inputs.costs[static_cast<size_t>(stage.op_id)], params, usage,
          stage.sites, machine.num_sites);
      if (!op.ok()) {
        ADD_FAILURE() << "ParallelizeRooted op" << stage.op_id << ": "
                      << op.status().ToString();
        return false;
      }
      for (int k = 0; k < op->degree; ++k) {
        Status placed = schedule->PlaceAt(*op, k, op->home[static_cast<size_t>(k)],
                                          task.start_time);
        if (!placed.ok()) {
          ADD_FAILURE() << "PlaceAt op" << stage.op_id << " clone " << k
                        << ": " << placed.ToString();
          return false;
        }
      }
    }
  }
  return true;
}

void CheckExecutionCase(const ExecDiffCase& c, int plans_per_case) {
  SCOPED_TRACE("execution differential case " + c.ToString() +
               " — replay via MRS_FUZZ_SEED or tests/data/fuzz_corpus.txt");
  MachineConfig machine;
  machine.num_sites = c.sites;
  const CostParams params;
  const OverlapUsageModel usage(c.eps);
  const FluidSimulator simulator(usage, SharingPolicy::kOptimalStretch);
  ExecuteOptions exec;
  exec.meter = ExecMeter::kDeterministic;
  exec.threads = c.threads;

  Rng master(c.seed);
  for (int plan_idx = 0; plan_idx < plans_per_case; ++plan_idx) {
    SCOPED_TRACE(::testing::Message() << "plan " << plan_idx);
    Rng stream = master.Fork();
    EngineInputs inputs;
    if (!BuildInputs(c, &stream, &inputs)) return;
    const std::vector<ExecOpSpec> specs = ExecOpSpecsFromTree(inputs.op_tree);

    // --- TREESCHEDULE: phases replay back to back on one backend. ---
    TreeScheduleOptions tree_options;
    tree_options.granularity = c.f;
    auto tree = TreeSchedule(inputs.op_tree, inputs.task_tree, inputs.costs,
                             params, machine, usage, tree_options);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    {
      ExecuteBackend backend(exec);
      for (const PhaseSchedule& phase : tree->phases) {
        SCOPED_TRACE(::testing::Message() << "tree phase " << phase.phase);
        auto run = backend.Run(phase.schedule, specs);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        auto sim = simulator.SimulateTimed(phase.schedule);
        ASSERT_TRUE(sim.ok()) << sim.status().ToString();
        ExpectTimelinesAgree(run->timeline, *sim, phase.schedule);
        ExpectExecutionSane(*run, phase.schedule);
      }
    }

    // --- LISTSCHEDULE: one timed schedule with staggered starts. ---
    ListScheduleOptions list_options;
    list_options.granularity = c.f;
    auto list = ListSchedule(inputs.op_tree, inputs.task_tree, inputs.costs,
                             params, machine, usage, list_options);
    ASSERT_TRUE(list.ok()) << list.status().ToString();
    {
      SCOPED_TRACE("list schedule");
      ExecuteBackend backend(exec);
      auto run = backend.Run(list->schedule, specs);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      auto sim = simulator.SimulateTimed(list->schedule);
      ASSERT_TRUE(sim.ok()) << sim.status().ToString();
      ExpectTimelinesAgree(run->timeline, *sim, list->schedule);
      ExpectExecutionSane(*run, list->schedule);
    }

    // --- PIPELINED LISTSCHEDULE: overlapping producer/consumer residency
    // on the same timeline discipline; the pipelined replay (bounded
    // queues, dedicated threads) must still match SimulateTimed within
    // 1e-6 and stay byte-identical across thread counts. ---
    ListScheduleOptions pipe_sched_options;
    pipe_sched_options.granularity = c.f;
    pipe_sched_options.pipeline = true;
    auto piped = ListSchedule(inputs.op_tree, inputs.task_tree, inputs.costs,
                              params, machine, usage, pipe_sched_options);
    ASSERT_TRUE(piped.ok()) << piped.status().ToString();
    {
      SCOPED_TRACE("pipelined list schedule");
      ExecuteOptions pipe_exec = exec;
      pipe_exec.pipeline_edges = true;
      ExecuteBackend backend(pipe_exec);
      auto run = backend.Run(piped->schedule, specs);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      auto sim = simulator.SimulateTimed(piped->schedule);
      ASSERT_TRUE(sim.ok()) << sim.status().ToString();
      ExpectTimelinesAgree(run->timeline, *sim, piped->schedule);
      ExpectExecutionSane(*run, piped->schedule);

      ExecuteOptions repool = pipe_exec;
      repool.threads = c.threads == 1 ? 3 : 1;
      ExecuteBackend backend2(repool);
      auto run2 = backend2.Run(piped->schedule, specs);
      ASSERT_TRUE(run2.ok()) << run2.status().ToString();
      EXPECT_EQ(run->digest, run2->digest)
          << "pipelined digest depends on the pool size";
      EXPECT_EQ(run->rows_out, run2->rows_out);
    }

    // --- SYNCHRONOUS: reconstructed as a timed schedule. ---
    auto sync = SynchronousSchedule(inputs.op_tree, inputs.task_tree,
                                    inputs.costs, params, machine, usage);
    ASSERT_TRUE(sync.ok()) << sync.status().ToString();
    {
      SCOPED_TRACE("synchronous schedule");
      Schedule schedule(machine.num_sites, machine.dims);
      if (!ReconstructSyncSchedule(*sync, inputs, params, machine, usage,
                                   &schedule)) {
        return;
      }
      ExecuteBackend backend(exec);
      auto run = backend.Run(schedule, specs);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      auto sim = simulator.SimulateTimed(schedule);
      ASSERT_TRUE(sim.ok()) << sim.status().ToString();
      ExpectTimelinesAgree(run->timeline, *sim, schedule);
      ExpectExecutionSane(*run, schedule);
    }
  }
}

ExecDiffCase DrawCase(Rng* rng) {
  ExecDiffCase c;
  c.joins = 2 + static_cast<int>(rng->Index(8));
  c.sort_probability = rng->Bernoulli(0.3) ? 0.2 : 0.0;
  c.aggregate_probability = rng->Bernoulli(0.3) ? 0.2 : 0.0;
  c.eps = rng->UniformDouble();
  c.f = rng->UniformDouble(0.3, 0.9);
  c.sites = 4 + static_cast<int>(rng->Index(28));
  c.threads = 1 + static_cast<int>(rng->Index(4));
  c.seed = rng->Next();
  return c;
}

class ExecDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecDifferentialTest, ExecuteTimelineMatchesSimulator) {
  const uint64_t sweep_seed = testing_util::FuzzSeed(GetParam());
  Rng rng(sweep_seed);
  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE(::testing::Message() << "sweep seed " << sweep_seed
                                      << " round " << round);
    CheckExecutionCase(DrawCase(&rng), /*plans_per_case=*/2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExecDifferentialTest,
                         ::testing::Values(44044u, 55055u, 66066u));

/// Every pinned corpus tuple replays through the execution differential
/// harness across all three engines.
TEST(ExecDifferentialCorpusTest, PinnedTuplesAgreeWithSimulator) {
  const std::string path = std::string(MRS_TEST_DATA_DIR) +
                           "/fuzz_corpus.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing corpus file: " << path;
  std::string line;
  int cases = 0;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    ExecDiffCase c;
    if (!(ls >> c.seed >> c.eps >> c.f >> c.sites >> c.threads >> c.joins >>
          c.sort_probability >> c.aggregate_probability)) {
      continue;  // blank / comment-only line (grammar pinned elsewhere)
    }
    SCOPED_TRACE(::testing::Message()
                 << "corpus line " << line_no << " of " << path);
    CheckExecutionCase(c, /*plans_per_case=*/2);
    ++cases;
  }
  EXPECT_GE(cases, 6) << "corpus should pin at least six tuples";
}

}  // namespace
}  // namespace mrs
