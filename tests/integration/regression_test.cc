#include <gtest/gtest.h>

#include "workload/experiment.h"

namespace mrs {
namespace {

/// Golden regression values: average response times (ms) for fixed
/// (workload, machine, scheduler) configurations under the default master
/// seed. Every quantity in this library is deterministic model time, so
/// these must reproduce bit-stably on any host. If an *intentional*
/// algorithm or cost-model change moves them, regenerate the constants
/// and record the change in EXPERIMENTS.md — this suite exists to make
/// silent behavior drift impossible.
struct GoldenCase {
  int joins;
  int sites;
  double granularity;
  double overlap;
  SchedulerKind kind;
  double expected_ms;
};

constexpr double kRelTol = 1e-9;

class GoldenRegressionTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenRegressionTest, AverageResponseIsStable) {
  const GoldenCase& c = GetParam();
  ExperimentConfig config;
  config.queries_per_point = 3;
  config.workload.num_joins = c.joins;
  config.machine.num_sites = c.sites;
  config.granularity = c.granularity;
  config.overlap = c.overlap;
  auto stat = MeasureAverageResponse(c.kind, config);
  ASSERT_TRUE(stat.ok());
  EXPECT_NEAR(stat->mean(), c.expected_ms, c.expected_ms * kRelTol)
      << SchedulerKindToString(c.kind) << " J=" << c.joins
      << " P=" << c.sites;
}

INSTANTIATE_TEST_SUITE_P(
    Golden, GoldenRegressionTest,
    ::testing::Values(
        GoldenCase{10, 16, 0.7, 0.5, SchedulerKind::kTreeSchedule,
                   34808.743695},
        GoldenCase{10, 16, 0.7, 0.5, SchedulerKind::kTreeScheduleMalleable,
                   40798.833926},
        GoldenCase{10, 16, 0.7, 0.5, SchedulerKind::kSynchronous,
                   77462.455200},
        GoldenCase{10, 16, 0.7, 0.5, SchedulerKind::kHongPairing,
                   40438.267355},
        GoldenCase{10, 16, 0.7, 0.5, SchedulerKind::kOptBound,
                   34287.491667},
        GoldenCase{25, 40, 0.5, 0.3, SchedulerKind::kTreeSchedule,
                   25005.403236},
        GoldenCase{25, 40, 0.5, 0.3, SchedulerKind::kSynchronous,
                   46989.334853},
        GoldenCase{40, 80, 0.7, 0.5, SchedulerKind::kTreeSchedule,
                   27410.695769},
        GoldenCase{40, 80, 0.7, 0.5, SchedulerKind::kOptBound,
                   25443.631667}));

}  // namespace
}  // namespace mrs
