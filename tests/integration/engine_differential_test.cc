// Differential correctness harness across the engines: on every fuzz
// plan, TREESCHEDULE, LISTSCHEDULE (task-wave and pipelined), and the
// SYNCHRONOUS baseline are run with matched knobs and cross-checked
// against each other and against the analytic lower bounds:
//
//   * PIPELINED <= LIST <= TREE on every plan (the guard chain);
//   * a pipelined consumer clone never starts before its producer;
//   * every engine's answer is >= its own lower bound — the critical-path
//     bound over the task tree (sum of per-task max T_par along any
//     root-leaf path, under the engine's chosen degrees) and the packing
//     bound l(S_total)/P;
//   * LIST stays within (2d+1) of the per-phase lower-bound sum, the
//     Theorem 5.1(a) guarantee it inherits from TREESCHEDULE via the
//     guard;
//   * structural validity (constraint A, rooted homes) and precedence on
//     the shared timeline.
//
// Replayability matches batch_fuzz_test.cc: every check runs under a
// SCOPED_TRACE carrying the full case tuple, MRS_FUZZ_SEED re-roots the
// random sweeps, and tests/data/fuzz_corpus.txt tuples replay verbatim.

#include <algorithm>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/synchronous.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/list_schedule.h"
#include "core/tree_schedule.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "test_util.h"
#include "workload/generator.h"

namespace mrs {
namespace {

using testing_util::ListScheduleLowerBound;

/// One pinned differential case (same tuple layout as batch_fuzz_test.cc
/// and tests/data/fuzz_corpus.txt: seed eps f sites threads joins sortp
/// aggp — `threads` is parsed for corpus compatibility but unused here,
/// the engines under test are single-query).
struct DiffCase {
  uint64_t seed = 0;
  double eps = 0.5;
  double f = 0.7;
  int sites = 16;
  int threads = 2;
  int joins = 6;
  double sort_probability = 0.0;
  double aggregate_probability = 0.0;

  std::string ToString() const {
    return StrFormat("(seed=%llu eps=%g f=%g P=%d threads=%d joins=%d "
                     "sortp=%g aggp=%g)",
                     static_cast<unsigned long long>(seed), eps, f, sites,
                     threads, joins, sort_probability,
                     aggregate_probability);
  }
};

/// Scheduler inputs derived from one generated plan. The task tree holds a
/// pointer into the operator tree, so both live here together.
struct EngineInputs {
  GeneratedQuery query;
  OperatorTree op_tree;
  TaskTree task_tree;
  std::vector<OperatorCost> costs;
};

bool BuildInputs(const DiffCase& c, Rng* stream, EngineInputs* inputs) {
  WorkloadParams workload;
  workload.num_joins = c.joins;
  workload.sort_probability = c.sort_probability;
  workload.aggregate_probability = c.aggregate_probability;
  auto query = GenerateQuery(workload, stream);
  if (!query.ok()) {
    ADD_FAILURE() << "GenerateQuery: " << query.status().ToString();
    return false;
  }
  inputs->query = std::move(query).value();
  auto ops = OperatorTree::FromPlan(*inputs->query.plan);
  if (!ops.ok()) {
    ADD_FAILURE() << "FromPlan: " << ops.status().ToString();
    return false;
  }
  inputs->op_tree = std::move(ops).value();
  auto tasks = TaskTree::FromOperatorTree(&inputs->op_tree);
  if (!tasks.ok()) {
    ADD_FAILURE() << "FromOperatorTree: " << tasks.status().ToString();
    return false;
  }
  inputs->task_tree = std::move(tasks).value();
  CostModel model(CostParams{}, MachineConfig{}.dims);
  auto costs = model.CostAll(inputs->op_tree);
  if (!costs.ok()) {
    ADD_FAILURE() << "CostAll: " << costs.status().ToString();
    return false;
  }
  inputs->costs = std::move(costs).value();
  return true;
}

/// Critical-path lower bound over the task tree for a concrete
/// parallelization: max over root-leaf paths of the per-task max T_par.
/// Valid for any engine that (a) never runs a clone faster than its
/// stand-alone time and (b) starts a task only after its children finish.
double CriticalPathBound(const TaskTree& task_tree,
                         const std::vector<ParallelizedOp>& ops) {
  std::vector<double> task_tpar(
      static_cast<size_t>(task_tree.num_tasks()), 0.0);
  for (const QueryTask& task : task_tree.tasks()) {
    for (int oid : task.ops) {
      for (const ParallelizedOp& op : ops) {
        if (op.op_id == oid) {
          task_tpar[static_cast<size_t>(task.id)] =
              std::max(task_tpar[static_cast<size_t>(task.id)], op.t_par);
        }
      }
    }
  }
  // Deepest-first accumulation: cp(task) = own + max over children.
  std::vector<double> cp = task_tpar;
  std::vector<int> order;
  for (const QueryTask& task : task_tree.tasks()) order.push_back(task.id);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return task_tree.task(a).depth > task_tree.task(b).depth;
  });
  double best = 0.0;
  for (int tid : order) {
    const QueryTask& task = task_tree.task(tid);
    double deepest_child = 0.0;
    for (int child : task.children) {
      deepest_child =
          std::max(deepest_child, cp[static_cast<size_t>(child)]);
    }
    cp[static_cast<size_t>(tid)] += deepest_child;
    best = std::max(best, cp[static_cast<size_t>(tid)]);
  }
  return best;
}

/// Runs all three engines on every plan of one case and cross-checks.
void CheckCase(const DiffCase& c, int plans_per_case) {
  SCOPED_TRACE("differential case " + c.ToString() +
               " — replay via MRS_FUZZ_SEED or tests/data/fuzz_corpus.txt");
  MachineConfig machine;
  machine.num_sites = c.sites;
  const CostParams params;
  const OverlapUsageModel usage(c.eps);
  const double tol = 1e-6;

  Rng master(c.seed);
  for (int plan_idx = 0; plan_idx < plans_per_case; ++plan_idx) {
    SCOPED_TRACE(::testing::Message() << "plan " << plan_idx);
    Rng stream = master.Fork();
    EngineInputs inputs;
    if (!BuildInputs(c, &stream, &inputs)) return;

    TreeScheduleOptions tree_options;
    tree_options.granularity = c.f;
    auto tree = TreeSchedule(inputs.op_tree, inputs.task_tree, inputs.costs,
                             params, machine, usage, tree_options);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();

    ListScheduleOptions list_options;
    list_options.granularity = c.f;
    auto list = ListSchedule(inputs.op_tree, inputs.task_tree, inputs.costs,
                             params, machine, usage, list_options);
    ASSERT_TRUE(list.ok()) << list.status().ToString();

    auto sync = SynchronousSchedule(inputs.op_tree, inputs.task_tree,
                                    inputs.costs, params, machine, usage);
    ASSERT_TRUE(sync.ok()) << sync.status().ToString();

    ListScheduleOptions pipe_options;
    pipe_options.granularity = c.f;
    pipe_options.pipeline = true;
    auto piped = ListSchedule(inputs.op_tree, inputs.task_tree, inputs.costs,
                              params, machine, usage, pipe_options);
    ASSERT_TRUE(piped.ok()) << piped.status().ToString();

    // --- The dominance invariants: PIPELINED <= LIST <= TREE. ---
    EXPECT_LE(list->makespan, tree->response_time + tol)
        << "barrier-free schedule slower than the phased engine";
    EXPECT_NEAR(list->tree_response_time, tree->response_time,
                tol * std::max(1.0, tree->response_time));
    EXPECT_LE(piped->makespan, list->makespan + tol)
        << "pipelined schedule slower than task-wave LIST despite the guard";
    EXPECT_LE(piped->makespan, tree->response_time + tol);
    // Exactly one of pipelined/wave-fallback, unless the tree_guard
    // overrode both with the phased schedule.
    if (!piped->used_tree_fallback) {
      EXPECT_NE(piped->pipelined, piped->used_list_fallback);
    }
    EXPECT_NEAR(piped->list_makespan, list->makespan,
                tol * std::max(1.0, list->makespan));

    // --- Pipelined structure: a consumer clone never starts before its
    // producer (equal starts are the point — co-residency). Checked over
    // every pipelined data edge via earliest clone start per op. ---
    EXPECT_TRUE(piped->schedule.Validate(piped->ops).ok());
    {
      std::vector<double> first_start(
          static_cast<size_t>(inputs.op_tree.num_ops()),
          std::numeric_limits<double>::infinity());
      for (const ClonePlacement& p : piped->schedule.placements()) {
        first_start[static_cast<size_t>(p.op_id)] =
            std::min(first_start[static_cast<size_t>(p.op_id)], p.start);
      }
      for (const PhysicalOp& op : inputs.op_tree.ops()) {
        for (int d : op.data_inputs) {
          EXPECT_GE(first_start[static_cast<size_t>(op.id)],
                    first_start[static_cast<size_t>(d)] - tol)
              << "op" << op.id << " starts before its producer op" << d;
        }
      }
    }

    // --- Pipelined lower bounds: rate matching never runs a clone
    // faster than its stand-alone time and tasks still respect the task
    // tree, so the same critical-path + packing bounds apply to the
    // pipelined engine's own degrees. ---
    const double piped_lb =
        std::max(CriticalPathBound(inputs.task_tree, piped->ops),
                 ListScheduleLowerBound(piped->ops, c.sites));
    EXPECT_GE(piped->makespan, piped_lb - tol)
        << "pipelined beat its lower bound";

    // --- Structural validity. ---
    EXPECT_TRUE(list->schedule.Validate(list->ops).ok());
    for (const PhaseSchedule& phase : tree->phases) {
      EXPECT_TRUE(phase.schedule.Validate(phase.ops).ok());
    }
    // Precedence on the shared timeline.
    for (const QueryTask& task : inputs.task_tree.tasks()) {
      for (int child : task.children) {
        EXPECT_GE(list->tasks[static_cast<size_t>(task.id)].start,
                  list->tasks[static_cast<size_t>(child)].finish - tol);
      }
    }

    // --- Lower bounds, each engine against its own degrees. ---
    const double list_lb =
        std::max(CriticalPathBound(inputs.task_tree, list->ops),
                 ListScheduleLowerBound(list->ops, c.sites));
    EXPECT_GE(list->makespan, list_lb - tol) << "list beat its lower bound";

    std::vector<ParallelizedOp> tree_ops;
    double tree_phase_lb_sum = 0.0;
    for (const PhaseSchedule& phase : tree->phases) {
      tree_phase_lb_sum += ListScheduleLowerBound(phase.ops, c.sites);
      tree_ops.insert(tree_ops.end(), phase.ops.begin(), phase.ops.end());
    }
    const double tree_lb =
        std::max(CriticalPathBound(inputs.task_tree, tree_ops),
                 ListScheduleLowerBound(tree_ops, c.sites));
    EXPECT_GE(tree->response_time, tree_lb - tol)
        << "tree beat its lower bound";

    // --- Theorem 5.1(a) inherited through the guard: LIST is within
    // (2d+1) of the per-phase lower-bound sum. ---
    EXPECT_LE(list->makespan,
              (2.0 * machine.dims + 1.0) * tree_phase_lb_sum + tol);
    // The pipelined engine inherits the same guarantee through its guard
    // chain (PIPELINED <= LIST <= (2d+1) * sum of phase lower bounds).
    EXPECT_LE(piped->makespan,
              (2.0 * machine.dims + 1.0) * tree_phase_lb_sum + tol);

    // --- SYNCHRONOUS: structurally sound and positive (it is the
    // adversary baseline, so no dominance direction is asserted). ---
    EXPECT_GT(sync->response_time, 0.0);
    ASSERT_EQ(static_cast<int>(sync->tasks.size()),
              inputs.task_tree.num_tasks());
    // Placements arrive in traversal order, not task-id order.
    std::vector<const SyncTaskPlacement*> by_id(sync->tasks.size(), nullptr);
    for (const SyncTaskPlacement& task : sync->tasks) {
      ASSERT_GE(task.task_id, 0);
      ASSERT_LT(task.task_id, static_cast<int>(by_id.size()));
      by_id[static_cast<size_t>(task.task_id)] = &task;
    }
    for (const SyncTaskPlacement& task : sync->tasks) {
      EXPECT_GE(task.start_time, -tol);
      EXPECT_LE(task.start_time + task.duration, sync->response_time + tol);
      for (int child : inputs.task_tree.task(task.task_id).children) {
        const SyncTaskPlacement& child_placement =
            *by_id[static_cast<size_t>(child)];
        EXPECT_GE(task.start_time, child_placement.start_time +
                                       child_placement.duration - tol);
      }
    }
  }
}

DiffCase DrawCase(Rng* rng) {
  DiffCase c;
  c.joins = 2 + static_cast<int>(rng->Index(10));
  c.sort_probability = rng->Bernoulli(0.3) ? 0.2 : 0.0;
  c.aggregate_probability = rng->Bernoulli(0.3) ? 0.2 : 0.0;
  c.eps = rng->UniformDouble();
  c.f = rng->UniformDouble(0.3, 0.9);
  c.sites = 4 + static_cast<int>(rng->Index(60));
  c.seed = rng->Next();
  return c;
}

class EngineDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineDifferentialTest, ListNeverLosesAndBoundsHold) {
  // 10 cases x 7 plans = 70 plans per sweep seed; three seeds and the
  // corpus together cover well over 200 plans per ctest invocation.
  const uint64_t sweep_seed = testing_util::FuzzSeed(GetParam());
  Rng rng(sweep_seed);
  for (int round = 0; round < 10; ++round) {
    SCOPED_TRACE(::testing::Message() << "sweep seed " << sweep_seed
                                      << " round " << round);
    CheckCase(DrawCase(&rng), /*plans_per_case=*/7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineDifferentialTest,
                         ::testing::Values(11011u, 22022u, 33033u));

/// The pinned corpus tuples replay through the differential harness too —
/// the same file batch_fuzz_test.cc uses, parsed with the same grammar.
TEST(EngineDifferentialCorpusTest, PinnedTuplesStillHold) {
  const std::string path = std::string(MRS_TEST_DATA_DIR) +
                           "/fuzz_corpus.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing corpus file: " << path;
  std::string line;
  int cases = 0;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    DiffCase c;
    if (!(ls >> c.seed >> c.eps >> c.f >> c.sites >> c.threads >> c.joins >>
          c.sort_probability >> c.aggregate_probability)) {
      std::istringstream check(line);
      std::string stray;
      ASSERT_FALSE(static_cast<bool>(check >> stray))
          << "malformed corpus line " << line_no << ": " << line;
      continue;  // blank / comment-only line
    }
    SCOPED_TRACE(::testing::Message()
                 << "corpus line " << line_no << " of " << path);
    CheckCase(c, /*plans_per_case=*/8);
    ++cases;
  }
  EXPECT_GE(cases, 6) << "corpus should pin at least six tuples";
}

}  // namespace
}  // namespace mrs
