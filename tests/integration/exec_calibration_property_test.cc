// Slow property suite for the calibration loop: a single Calibrator
// replays well over twenty corpus-derived plans (TREESCHEDULE phased
// plans and LISTSCHEDULE timed schedules) on the execute backend and the
// fitted per-dimension scale must strictly reduce the mean relative
// error of the per-site predictions against the measured site times —
// the acceptance property of the execution-backed validation harness.
// The report is regenerated from scratch afterwards to pin that the
// whole loop (replay, fit, JSON rendering) is deterministic.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "core/list_schedule.h"
#include "core/tree_schedule.h"
#include "exec/calibrate.h"
#include "exec/exec_backend.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "test_util.h"
#include "workload/generator.h"

namespace mrs {
namespace {

struct CorpusCase {
  uint64_t seed = 0;
  double eps = 0.5;
  double f = 0.7;
  int sites = 16;
  int threads = 2;
  int joins = 6;
  double sort_probability = 0.0;
  double aggregate_probability = 0.0;
};

std::vector<CorpusCase> LoadCorpus() {
  const std::string path = std::string(MRS_TEST_DATA_DIR) +
                           "/fuzz_corpus.txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file: " << path;
  std::vector<CorpusCase> cases;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    CorpusCase c;
    if (ls >> c.seed >> c.eps >> c.f >> c.sites >> c.threads >> c.joins >>
        c.sort_probability >> c.aggregate_probability) {
      cases.push_back(c);
    }
  }
  return cases;
}

struct PlanInputs {
  GeneratedQuery query;
  OperatorTree op_tree;
  TaskTree task_tree;
  std::vector<OperatorCost> costs;
};

bool BuildPlan(const CorpusCase& c, Rng* stream, PlanInputs* inputs) {
  WorkloadParams workload;
  workload.num_joins = c.joins;
  workload.sort_probability = c.sort_probability;
  workload.aggregate_probability = c.aggregate_probability;
  auto query = GenerateQuery(workload, stream);
  if (!query.ok()) return false;
  inputs->query = std::move(query).value();
  auto ops = OperatorTree::FromPlan(*inputs->query.plan);
  if (!ops.ok()) return false;
  inputs->op_tree = std::move(ops).value();
  auto tasks = TaskTree::FromOperatorTree(&inputs->op_tree);
  if (!tasks.ok()) return false;
  inputs->task_tree = std::move(tasks).value();
  CostModel model(CostParams{}, MachineConfig{}.dims);
  auto costs = model.CostAll(inputs->op_tree);
  if (!costs.ok()) return false;
  inputs->costs = std::move(costs).value();
  return true;
}

/// Feeds one calibrator with TREE and LIST plans from every corpus tuple
/// until at least `min_plans` plans are recorded. All plans share one
/// machine shape (the calibrator is per-dimensionality, and mixing site
/// counts is fine — samples aggregate per plan).
std::string CalibrateCorpus(int min_plans, double* unfitted, double* fitted,
                            int* num_plans) {
  const MachineConfig machine;
  const CostParams params;
  const OverlapUsageModel usage(0.5);
  ExecuteOptions exec;
  exec.meter = ExecMeter::kDeterministic;
  exec.threads = 2;
  Calibrator calibrator(machine.dims, usage, exec);

  const std::vector<CorpusCase> corpus = LoadCorpus();
  EXPECT_GE(corpus.size(), 6u);
  int plan_no = 0;
  for (const CorpusCase& c : corpus) {
    MachineConfig case_machine;
    case_machine.num_sites = c.sites;
    Rng master(c.seed);
    for (int plan_idx = 0; plan_idx < 2; ++plan_idx) {
      Rng stream = master.Fork();
      PlanInputs inputs;
      if (!BuildPlan(c, &stream, &inputs)) {
        ADD_FAILURE() << "corpus plan generation failed (seed " << c.seed
                      << ")";
        continue;
      }
      const std::vector<ExecOpSpec> specs =
          ExecOpSpecsFromTree(inputs.op_tree);

      TreeScheduleOptions tree_options;
      tree_options.granularity = c.f;
      auto tree = TreeSchedule(inputs.op_tree, inputs.task_tree, inputs.costs,
                               params, case_machine, OverlapUsageModel(c.eps),
                               tree_options);
      if (!tree.ok()) {
        ADD_FAILURE() << "TreeSchedule: " << tree.status().ToString();
        return "";
      }
      Status added = calibrator.AddTreePlan(
          StrFormat("corpus%d-tree", plan_no), *tree, specs);
      if (!added.ok()) {
        ADD_FAILURE() << "AddTreePlan: " << added.ToString();
        return "";
      }

      ListScheduleOptions list_options;
      list_options.granularity = c.f;
      auto list = ListSchedule(inputs.op_tree, inputs.task_tree, inputs.costs,
                               params, case_machine, OverlapUsageModel(c.eps),
                               list_options);
      if (!list.ok()) {
        ADD_FAILURE() << "ListSchedule: " << list.status().ToString();
        return "";
      }
      added = calibrator.AddSchedule(StrFormat("corpus%d-list", plan_no),
                                     list->schedule, specs);
      if (!added.ok()) {
        ADD_FAILURE() << "AddSchedule: " << added.ToString();
        return "";
      }
      ++plan_no;
    }
  }

  EXPECT_GE(calibrator.num_plans(), min_plans)
      << "corpus must yield enough plans for the acceptance property";
  *unfitted = calibrator.MeanRelativeError(/*fitted=*/false);
  *fitted = calibrator.MeanRelativeError(/*fitted=*/true);
  *num_plans = calibrator.num_plans();
  return calibrator.ReportJson();
}

TEST(ExecCalibrationPropertyTest, FittedScaleReducesErrorOverTheCorpus) {
  double unfitted = 0.0;
  double fitted = 0.0;
  int num_plans = 0;
  const std::string report =
      CalibrateCorpus(/*min_plans=*/20, &unfitted, &fitted, &num_plans);
  if (HasFailure()) return;

  // The acceptance property: fitting strictly reduces the mean relative
  // error of the per-site predictions across >= 20 corpus plans.
  EXPECT_GT(unfitted, 0.0);
  EXPECT_LT(fitted, unfitted)
      << "fitted scale must improve on the analytic units";

  // The report reflects the same numbers it was built from.
  EXPECT_NE(report.find(StrFormat("\"plans\": %d,", num_plans)),
            std::string::npos);
  EXPECT_NE(report.find(StrFormat("\"mean_rel_error_unfitted\": %.6f,",
                                  unfitted)),
            std::string::npos);
  EXPECT_NE(report.find(StrFormat("\"mean_rel_error_fitted\": %.6f,",
                                  fitted)),
            std::string::npos);

  // The whole loop is deterministic: replaying it yields the same bytes.
  double unfitted2 = 0.0;
  double fitted2 = 0.0;
  int num_plans2 = 0;
  const std::string replay =
      CalibrateCorpus(/*min_plans=*/20, &unfitted2, &fitted2, &num_plans2);
  EXPECT_EQ(report, replay);
  EXPECT_EQ(num_plans, num_plans2);
}

}  // namespace
}  // namespace mrs
