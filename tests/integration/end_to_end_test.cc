#include <gtest/gtest.h>

#include "baseline/synchronous.h"
#include "core/opt_bound.h"
#include "core/tree_schedule.h"
#include "exec/fluid_simulator.h"
#include "exec/gantt.h"
#include "workload/experiment.h"

namespace mrs {
namespace {

/// Full pipeline on randomly generated queries: generate -> expand ->
/// cost -> schedule (all algorithms) -> validate -> simulate.
class EndToEndTest : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndTest, FullPipelineConsistency) {
  const int num_joins = GetParam();
  ExperimentConfig config;
  config.queries_per_point = 2;
  config.workload.num_joins = num_joins;
  config.machine.num_sites = 20;
  config.granularity = 0.7;
  config.overlap = 0.5;

  for (int q = 0; q < config.queries_per_point; ++q) {
    auto artifacts = PrepareQuery(config, q);
    ASSERT_TRUE(artifacts.ok());
    const OverlapUsageModel usage(config.overlap);

    // TREESCHEDULE: valid phases, probes rooted with builds.
    TreeScheduleOptions options;
    options.granularity = config.granularity;
    auto tree = TreeSchedule(artifacts->op_tree, artifacts->task_tree,
                             artifacts->costs, config.cost, config.machine,
                             usage, options);
    ASSERT_TRUE(tree.ok());
    ASSERT_EQ(static_cast<int>(tree->phases.size()),
              artifacts->task_tree.num_phases());
    for (const auto& phase : tree->phases) {
      ASSERT_TRUE(phase.schedule.Validate(phase.ops).ok());
    }
    for (const auto& op : artifacts->op_tree.ops()) {
      if (op.kind == OperatorKind::kProbe) {
        EXPECT_EQ(tree->HomeOf(op.id), tree->HomeOf(op.blocking_input));
      }
    }

    // The simulator reproduces the analytic response time.
    FluidSimulator sim(usage);
    auto simulated = sim.Simulate(*tree);
    ASSERT_TRUE(simulated.ok());
    EXPECT_NEAR(simulated->response_time, tree->response_time,
                1e-6 * std::max(1.0, tree->response_time));

    // SYNCHRONOUS runs and produces a complete placement.
    auto sync = SynchronousSchedule(artifacts->op_tree, artifacts->task_tree,
                                    artifacts->costs, config.cost,
                                    config.machine, usage);
    ASSERT_TRUE(sync.ok());
    EXPECT_GT(sync->response_time, 0.0);

    // OPTBOUND lower-bounds both schedulers' CG_f executions.
    auto bound = OptBound(artifacts->op_tree, artifacts->task_tree,
                          artifacts->costs, config.cost, usage,
                          config.granularity, config.machine.num_sites);
    ASSERT_TRUE(bound.ok());
    EXPECT_LE(bound->Bound(), tree->response_time + 1e-6);

    // Gantt rendering works on real schedules.
    EXPECT_FALSE(RenderTreeGantt(*tree).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(QuerySizes, EndToEndTest,
                         ::testing::Values(1, 3, 5, 10, 20));

TEST(EndToEndTest, MalleableAlsoSoundOnRealQueries) {
  ExperimentConfig config;
  config.workload.num_joins = 8;
  config.machine.num_sites = 16;
  auto artifacts = PrepareQuery(config, 0);
  ASSERT_TRUE(artifacts.ok());
  const OverlapUsageModel usage(config.overlap);
  TreeScheduleOptions options;
  options.policy = ParallelizationPolicy::kMalleable;
  auto tree = TreeSchedule(artifacts->op_tree, artifacts->task_tree,
                           artifacts->costs, config.cost, config.machine,
                           usage, options);
  ASSERT_TRUE(tree.ok());
  for (const auto& phase : tree->phases) {
    ASSERT_TRUE(phase.schedule.Validate(phase.ops).ok());
  }
  FluidSimulator sim(usage);
  auto simulated = sim.Simulate(*tree);
  ASSERT_TRUE(simulated.ok());
  EXPECT_NEAR(simulated->response_time, tree->response_time, 1e-6);
}

TEST(EndToEndTest, LargerMachinesHelpOnAverage) {
  ExperimentConfig config;
  config.queries_per_point = 5;
  config.workload.num_joins = 10;
  config.machine.num_sites = 10;
  auto small = MeasureAverageResponse(SchedulerKind::kTreeSchedule, config);
  config.machine.num_sites = 80;
  auto large = MeasureAverageResponse(SchedulerKind::kTreeSchedule, config);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(large->mean(), small->mean());
}

TEST(EndToEndTest, TreeScheduleBeatsSynchronousOnAverage) {
  // The paper's headline (Fig. 5/6): multi-dimensional scheduling wins on
  // average over the one-dimensional baseline.
  ExperimentConfig config;
  config.queries_per_point = 8;
  config.workload.num_joins = 15;
  config.machine.num_sites = 20;
  config.overlap = 0.3;
  auto stats = MeasureSchedulers(
      {SchedulerKind::kTreeSchedule, SchedulerKind::kSynchronous}, config);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT((*stats)[0].mean(), (*stats)[1].mean());
}

}  // namespace
}  // namespace mrs
