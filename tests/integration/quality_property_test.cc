#include <gtest/gtest.h>

#include "workload/experiment.h"

namespace mrs {
namespace {

/// Reproduction-quality properties: the *shapes* of the paper's §6
/// results, asserted as regressions so future changes cannot silently
/// erode them. Averages over a few queries keep these fast; the benches
/// run the full 20-query versions.
class QualityPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QualityPropertyTest, TreeScheduleNearOptimalAndBeatsBaseline) {
  const auto [joins, sites] = GetParam();
  ExperimentConfig config;
  config.queries_per_point = 5;
  config.workload.num_joins = joins;
  config.machine.num_sites = sites;
  config.granularity = 0.7;
  config.overlap = 0.3;
  auto stats = MeasureSchedulers(
      {SchedulerKind::kTreeSchedule, SchedulerKind::kSynchronous,
       SchedulerKind::kOptBound},
      config);
  ASSERT_TRUE(stats.ok());
  const double tree = (*stats)[0].mean();
  const double sync = (*stats)[1].mean();
  const double bound = (*stats)[2].mean();
  // Paper Fig. 6(b): far below the 7x-per-phase worst case. Our measured
  // worst over the sweep is ~1.3; assert a safety margin of 2.
  EXPECT_LE(tree, 2.0 * bound)
      << "J=" << joins << " P=" << sites << " (TREE/OPTBOUND regression)";
  // Paper Fig. 5/6: TREESCHEDULE beats SYNCHRONOUS on average at f=0.7.
  EXPECT_LT(tree, sync)
      << "J=" << joins << " P=" << sites << " (TREE vs SYNC regression)";
  // And it is a genuine lower bound.
  EXPECT_LE(bound, tree + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QualityPropertyTest,
    ::testing::Combine(::testing::Values(10, 25, 40),
                       ::testing::Values(10, 40, 140)));

TEST(QualityPropertyTest, MalleableTracksBestCoarseGrain) {
  ExperimentConfig config;
  config.queries_per_point = 5;
  config.workload.num_joins = 20;
  config.machine.num_sites = 40;
  config.overlap = 0.5;
  config.granularity = 0.7;
  auto stats = MeasureSchedulers(
      {SchedulerKind::kTreeSchedule, SchedulerKind::kTreeScheduleMalleable},
      config);
  ASSERT_TRUE(stats.ok());
  // The knob-free malleable scheduler stays within 1.5x of the tuned
  // coarse-grain configuration (measured ~1.05-1.25 across the sweep).
  EXPECT_LE((*stats)[1].mean(), 1.5 * (*stats)[0].mean());
}

TEST(QualityPropertyTest, RelativeImprovementGrowsWithQuerySize) {
  // Fig. 6(a)'s monotonicity as a regression: the SYNC/TREE ratio at the
  // largest query size exceeds the ratio at the smallest.
  ExperimentConfig config;
  config.queries_per_point = 5;
  config.machine.num_sites = 20;
  config.granularity = 0.7;
  config.overlap = 0.5;
  auto ratio_at = [&](int joins) {
    config.workload.num_joins = joins;
    auto stats = MeasureSchedulers(
        {SchedulerKind::kTreeSchedule, SchedulerKind::kSynchronous}, config);
    EXPECT_TRUE(stats.ok());
    return (*stats)[1].mean() / (*stats)[0].mean();
  };
  EXPECT_GT(ratio_at(50), ratio_at(10));
}

TEST(QualityPropertyTest, SmallSystemsBenefitMostFromSharing) {
  // Fig. 5(a)'s resource-limited claim as a regression: the SYNC/TREE
  // ratio at P=10 exceeds the ratio at P=140.
  ExperimentConfig config;
  config.queries_per_point = 5;
  config.workload.num_joins = 40;
  config.granularity = 0.7;
  config.overlap = 0.3;
  auto ratio_at = [&](int sites) {
    config.machine.num_sites = sites;
    auto stats = MeasureSchedulers(
        {SchedulerKind::kTreeSchedule, SchedulerKind::kSynchronous}, config);
    EXPECT_TRUE(stats.ok());
    return (*stats)[1].mean() / (*stats)[0].mean();
  };
  EXPECT_GT(ratio_at(10), ratio_at(140));
}

}  // namespace
}  // namespace mrs
