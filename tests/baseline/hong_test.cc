#include "baseline/hong.h"

#include <set>

#include <gtest/gtest.h>

#include "core/tree_schedule.h"
#include "test_util.h"
#include "workload/experiment.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::MakeFixture;
using testing_util::PipelinedChainFixture;
using testing_util::PlanFixture;

MachineConfig Machine(int sites) {
  MachineConfig m;
  m.num_sites = sites;
  return m;
}

TEST(HongTest, SingleScanPlan) {
  PlanFixture fx = MakeFixture(
      {20000}, [](PlanTree* plan) { plan->AddLeaf(0).value(); });
  OverlapUsageModel usage(0.5);
  auto result = HongSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(8), usage);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rounds.size(), 1u);
  EXPECT_GT(result->response_time, 0.0);
}

TEST(HongTest, AtMostTwoTasksPerRound) {
  PlanFixture fx = PipelinedChainFixture(6);
  OverlapUsageModel usage(0.5);
  auto result = HongSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(16), usage);
  ASSERT_TRUE(result.ok());
  for (const auto& round : result->rounds) {
    EXPECT_GE(round.tasks.size(), 1u);
    EXPECT_LE(round.tasks.size(), 2u);
  }
}

TEST(HongTest, EveryTaskRunsExactlyOnce) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  auto result = HongSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(8), usage);
  ASSERT_TRUE(result.ok());
  std::set<int> seen;
  for (const auto& round : result->rounds) {
    for (int t : round.tasks) {
      EXPECT_TRUE(seen.insert(t).second) << "task " << t << " ran twice";
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), fx.task_tree.num_tasks());
}

TEST(HongTest, RoundsRespectPhaseOrder) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  auto result = HongSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(8), usage);
  ASSERT_TRUE(result.ok());
  int prev_phase = 0;
  for (const auto& round : result->rounds) {
    EXPECT_GE(round.phase, prev_phase);
    prev_phase = round.phase;
  }
  // Response is the sum of the rounds.
  double sum = 0.0;
  for (const auto& round : result->rounds) sum += round.makespan;
  EXPECT_NEAR(result->response_time, sum, 1e-9);
}

TEST(HongTest, TypicallyBetweenSynchronousAndTreeSchedule) {
  // Pairing shares resources (beats no-sharing SYNCHRONOUS) but caps
  // concurrency at two pipelines (loses to TREESCHEDULE) — on average.
  ExperimentConfig config;
  config.queries_per_point = 8;
  config.workload.num_joins = 20;
  config.machine.num_sites = 20;
  config.overlap = 0.3;
  auto stats = MeasureSchedulers(
      {SchedulerKind::kTreeSchedule, SchedulerKind::kHongPairing,
       SchedulerKind::kSynchronous},
      config);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT((*stats)[0].mean(), (*stats)[1].mean());
  EXPECT_LT((*stats)[1].mean(), (*stats)[2].mean());
}

TEST(HongTest, RejectsMismatchedCosts) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  std::vector<OperatorCost> bad(fx.costs.begin(), fx.costs.end() - 1);
  EXPECT_FALSE(HongSchedule(fx.op_tree, fx.task_tree, bad, CostParams{},
                            Machine(8), usage)
                   .ok());
}

TEST(HongTest, SchedulerKindWiring) {
  ExperimentConfig config;
  config.queries_per_point = 1;
  config.workload.num_joins = 5;
  config.machine.num_sites = 8;
  auto artifacts = PrepareQuery(config, 0);
  ASSERT_TRUE(artifacts.ok());
  auto response =
      RunScheduler(SchedulerKind::kHongPairing, &artifacts.value(), config);
  ASSERT_TRUE(response.ok());
  EXPECT_GT(response.value(), 0.0);
  EXPECT_EQ(SchedulerKindToString(SchedulerKind::kHongPairing),
            "HONG-PAIRING");
}

}  // namespace
}  // namespace mrs
