#include "baseline/synchronous.h"

#include <set>

#include <gtest/gtest.h>

#include "core/tree_schedule.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::MakeFixture;
using testing_util::PipelinedChainFixture;
using testing_util::PlanFixture;

MachineConfig Machine(int sites) {
  MachineConfig m;
  m.num_sites = sites;
  return m;
}

TEST(SynchronousTest, SingleScanPlan) {
  PlanFixture fx = MakeFixture(
      {20000}, [](PlanTree* plan) { plan->AddLeaf(0).value(); });
  OverlapUsageModel usage(0.5);
  auto result = SynchronousSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                    CostParams{}, Machine(8), usage);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->response_time, 0.0);
  ASSERT_EQ(result->tasks.size(), 1u);
  EXPECT_EQ(result->tasks[0].stages.size(), 1u);
}

TEST(SynchronousTest, StagesGetDisjointSitesWithinTask) {
  PlanFixture fx = PipelinedChainFixture(3, 50000);
  OverlapUsageModel usage(0.5);
  auto result = SynchronousSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                    CostParams{}, Machine(32), usage);
  ASSERT_TRUE(result.ok());
  for (const auto& task : result->tasks) {
    if (static_cast<int>(task.stages.size()) >
        task.range_hi - task.range_lo) {
      continue;  // wrap-around fallback shares sites by design
    }
    std::set<int> used;
    for (const auto& stage : task.stages) {
      for (int s : stage.sites) {
        EXPECT_GE(s, task.range_lo);
        EXPECT_LT(s, task.range_hi);
        EXPECT_TRUE(used.insert(s).second)
            << "stages share site " << s << " in task " << task.task_id;
      }
    }
  }
}

TEST(SynchronousTest, EveryOperatorPlacedOnce) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  auto result = SynchronousSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                    CostParams{}, Machine(16), usage);
  ASSERT_TRUE(result.ok());
  std::set<int> ops_seen;
  for (const auto& task : result->tasks) {
    for (const auto& stage : task.stages) {
      EXPECT_TRUE(ops_seen.insert(stage.op_id).second);
      EXPECT_FALSE(stage.sites.empty());
    }
  }
  EXPECT_EQ(static_cast<int>(ops_seen.size()), fx.op_tree.num_ops());
}

TEST(SynchronousTest, ChildrenFinishBeforeParentStarts) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  auto result = SynchronousSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                    CostParams{}, Machine(16), usage);
  ASSERT_TRUE(result.ok());
  // Index task placements by task id.
  std::vector<const SyncTaskPlacement*> by_id(
      static_cast<size_t>(fx.task_tree.num_tasks()), nullptr);
  for (const auto& t : result->tasks) {
    by_id[static_cast<size_t>(t.task_id)] = &t;
  }
  for (const auto& task : fx.task_tree.tasks()) {
    if (task.parent == -1) continue;
    const auto* child = by_id[static_cast<size_t>(task.id)];
    const auto* parent = by_id[static_cast<size_t>(task.parent)];
    ASSERT_NE(child, nullptr);
    ASSERT_NE(parent, nullptr);
    EXPECT_GE(parent->start_time + 1e-9, child->start_time + child->duration);
  }
}

TEST(SynchronousTest, SiblingSubtreesGetDisjointRanges) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  auto result = SynchronousSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                    CostParams{}, Machine(16), usage);
  ASSERT_TRUE(result.ok());
  std::vector<const SyncTaskPlacement*> by_id(
      static_cast<size_t>(fx.task_tree.num_tasks()), nullptr);
  for (const auto& t : result->tasks) {
    by_id[static_cast<size_t>(t.task_id)] = &t;
  }
  for (const auto& task : fx.task_tree.tasks()) {
    const auto& children = task.children;
    for (size_t i = 0; i < children.size(); ++i) {
      for (size_t j = i + 1; j < children.size(); ++j) {
        const auto* a = by_id[static_cast<size_t>(children[i])];
        const auto* b = by_id[static_cast<size_t>(children[j])];
        const bool disjoint =
            a->range_hi <= b->range_lo || b->range_hi <= a->range_lo;
        const bool serialized =
            a->start_time + 1e-9 >= b->start_time + b->duration ||
            b->start_time + 1e-9 >= a->start_time + a->duration;
        EXPECT_TRUE(disjoint || serialized);
      }
    }
  }
}

TEST(SynchronousTest, ResponseAtLeastLongestTask) {
  PlanFixture fx = PipelinedChainFixture(4);
  OverlapUsageModel usage(0.5);
  auto result = SynchronousSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                    CostParams{}, Machine(8), usage);
  ASSERT_TRUE(result.ok());
  for (const auto& task : result->tasks) {
    EXPECT_LE(task.start_time + task.duration, result->response_time + 1e-9);
    EXPECT_GE(task.duration, 0.0);
  }
}

TEST(SynchronousTest, TypicallyLosesToTreeScheduleOnBushyPlans) {
  // The headline claim of the paper. On a resource-limited machine with
  // moderate overlap, multi-dimensional scheduling wins on average; we
  // check it on a handful of fixed plans (the figure benches sweep this
  // properly).
  OverlapUsageModel usage(0.3);
  int tree_wins = 0;
  const std::vector<std::vector<int64_t>> workloads = {
      {40000, 20000, 80000, 10000},
      {100000, 90000, 50000, 30000},
      {15000, 25000, 35000, 45000},
  };
  for (const auto& sizes : workloads) {
    PlanFixture fx = BushyFourWayFixture(sizes);
    TreeScheduleOptions options;
    options.granularity = 0.7;
    auto tree = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(10), usage, options);
    auto sync = SynchronousSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                    CostParams{}, Machine(10), usage);
    ASSERT_TRUE(tree.ok());
    ASSERT_TRUE(sync.ok());
    if (tree->response_time <= sync->response_time) ++tree_wins;
  }
  EXPECT_GE(tree_wins, 2);
}

TEST(SynchronousTest, SingleSiteMachine) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  auto result = SynchronousSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                    CostParams{}, Machine(1), usage);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->response_time, 0.0);
}

TEST(SynchronousTest, RejectsMismatchedCosts) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  std::vector<OperatorCost> bad(fx.costs.begin(), fx.costs.end() - 1);
  EXPECT_FALSE(SynchronousSchedule(fx.op_tree, fx.task_tree, bad,
                                   CostParams{}, Machine(8), usage)
                   .ok());
}

}  // namespace
}  // namespace mrs
