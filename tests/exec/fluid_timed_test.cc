// Tests for FluidSimulator::SimulateTimed, the arrival-aware counterpart
// of SimulatePhase. SimulatePhase bakes in the phase-alignment seed
// assumption — every clone starts at 0 — which LISTSCHEDULE's staggered
// placements break; these tests pin the failure of that assumption and
// the correctness of the generalized sweep under both sharing policies.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/list_schedule.h"
#include "core/tree_schedule.h"
#include "exec/fluid_simulator.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::MakeUnitOp;
using testing_util::PlanFixture;

TEST(FluidTimedTest, SeedAlignmentAssumptionBreaksOnStaggeredStarts) {
  // Two 4ms CPU-only clones on one site, the second arriving only after
  // the first finishes. SimulatePhase ignores the starts and serializes
  // them from 0 (makespan 8); the timed sweep honors the idle gap
  // (finish at 4, idle to 10, finish at 14).
  OverlapUsageModel usage(0.5);
  FluidSimulator sim(usage, SharingPolicy::kOptimalStretch);
  Schedule s(1, 2);
  ASSERT_TRUE(s.PlaceAt(MakeUnitOp(0, {4.0, 0.0}, usage), 0, 0, 0.0).ok());
  ASSERT_TRUE(s.PlaceAt(MakeUnitOp(1, {4.0, 0.0}, usage), 0, 0, 10.0).ok());

  auto aligned = sim.SimulatePhase(s);
  auto timed = sim.SimulateTimed(s);
  ASSERT_TRUE(aligned.ok());
  ASSERT_TRUE(timed.ok());
  EXPECT_DOUBLE_EQ(aligned->makespan, 8.0);  // the seed assumption's answer
  EXPECT_DOUBLE_EQ(timed->makespan, 14.0);
  EXPECT_DOUBLE_EQ(timed->clone_finish[0], 4.0);
  EXPECT_DOUBLE_EQ(timed->clone_finish[1], 14.0);
  EXPECT_NE(aligned->makespan, timed->makespan);
}

TEST(FluidTimedTest, MidWaveArrivalSqueezesResidentClone) {
  // A 4ms CPU clone runs alone; at t=2 a 4ms disk clone joins. Remaining
  // work at t=2 is (2,0)+(0,4): common completion 2 + max(2, 4) = 6.
  OverlapUsageModel usage(1.0);  // full overlap: l(W) = max component
  FluidSimulator sim(usage, SharingPolicy::kOptimalStretch);
  Schedule s(1, 2);
  ASSERT_TRUE(s.PlaceAt(MakeUnitOp(0, {4.0, 0.0}, usage), 0, 0, 0.0).ok());
  ASSERT_TRUE(s.PlaceAt(MakeUnitOp(1, {0.0, 4.0}, usage), 0, 0, 2.0).ok());
  auto timed = sim.SimulateTimed(s);
  ASSERT_TRUE(timed.ok());
  EXPECT_DOUBLE_EQ(timed->makespan, 6.0);
  EXPECT_DOUBLE_EQ(timed->clone_finish[0], 6.0);
  EXPECT_DOUBLE_EQ(timed->clone_finish[1], 6.0);
  // Work conservation across the rebasing arithmetic.
  EXPECT_NEAR(timed->sites[0].busy[0], 4.0, 1e-9);
  EXPECT_NEAR(timed->sites[0].busy[1], 4.0, 1e-9);
  // Matches the analytic sweep of the generalized Schedule.
  EXPECT_NEAR(timed->makespan, s.SiteFinish(0), 1e-9);
}

TEST(FluidTimedTest, AlignedScheduleReproducesSimulatePhaseExactly) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 9;
  auto plan = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage);
  ASSERT_TRUE(plan.ok());
  for (SharingPolicy policy :
       {SharingPolicy::kOptimalStretch, SharingPolicy::kUniformSlowdown}) {
    FluidSimulator sim(usage, policy);
    for (const PhaseSchedule& phase : plan->phases) {
      auto aligned = sim.SimulatePhase(phase.schedule);
      auto timed = sim.SimulateTimed(phase.schedule);
      ASSERT_TRUE(aligned.ok());
      ASSERT_TRUE(timed.ok());
      EXPECT_DOUBLE_EQ(timed->makespan, aligned->makespan);
      ASSERT_EQ(timed->clone_finish.size(), aligned->clone_finish.size());
      for (size_t p = 0; p < timed->clone_finish.size(); ++p) {
        EXPECT_DOUBLE_EQ(timed->clone_finish[p], aligned->clone_finish[p]);
      }
      for (size_t j = 0; j < timed->sites.size(); ++j) {
        EXPECT_DOUBLE_EQ(timed->sites[j].finish, aligned->sites[j].finish);
      }
    }
  }
}

TEST(FluidTimedTest, StaggeredDisjointResidentQueriesKeepTheirOwnMakespans) {
  // The overlapping-residency mirror of
  // DisjointResidentQueriesKeepTheirOwnMakespans: query B now *arrives*
  // at t=3.5 while query A is mid-flight on its own disjoint sites. The
  // two queries must not interfere: A keeps its standalone timeline, B
  // keeps its standalone timeline shifted by its arrival.
  OverlapUsageModel usage(0.4);
  FluidSimulator sim(usage, SharingPolicy::kOptimalStretch);
  const double kArrival = 3.5;

  const std::vector<std::pair<ParallelizedOp, int>> a_clones = {
      {MakeUnitOp(0, {6.0, 2.0}, usage), 0},
      {MakeUnitOp(1, {3.0, 5.0}, usage), 0},
      {MakeUnitOp(2, {4.0, 4.0}, usage), 1},
  };
  const std::vector<std::pair<ParallelizedOp, int>> b_clones = {
      {MakeUnitOp(3, {1.0, 2.0}, usage), 2},
      {MakeUnitOp(4, {2.0, 1.5}, usage), 3},
      {MakeUnitOp(5, {0.5, 0.5}, usage), 3},
  };

  Schedule only_b(4, 2);
  Schedule both(4, 2);
  for (const auto& [op, site] : a_clones) {
    ASSERT_TRUE(both.PlaceAt(op, 0, site, 0.0).ok());
  }
  for (const auto& [op, site] : b_clones) {
    ASSERT_TRUE(only_b.Place(op, 0, site).ok());
    ASSERT_TRUE(both.PlaceAt(op, 0, site, kArrival).ok());
  }

  auto sim_b = sim.SimulatePhase(only_b);
  auto sim_both = sim.SimulateTimed(both);
  ASSERT_TRUE(sim_b.ok());
  ASSERT_TRUE(sim_both.ok());

  // A's clones (placements 0..2) finish exactly as if B never arrived.
  auto sim_a_alone = [&] {
    Schedule only_a(4, 2);
    for (const auto& [op, site] : a_clones) {
      EXPECT_TRUE(only_a.Place(op, 0, site).ok());
    }
    return sim.SimulatePhase(only_a);
  }();
  ASSERT_TRUE(sim_a_alone.ok());
  for (size_t p = 0; p < a_clones.size(); ++p) {
    EXPECT_NEAR(sim_both->clone_finish[p], sim_a_alone->clone_finish[p],
                1e-9);
  }
  // B's clones finish at their standalone instants shifted by the arrival.
  for (size_t p = 0; p < b_clones.size(); ++p) {
    EXPECT_NEAR(sim_both->clone_finish[a_clones.size() + p],
                sim_b->clone_finish[p] + kArrival, 1e-9);
  }
  EXPECT_NEAR(sim_both->makespan,
              std::max(sim_a_alone->makespan, sim_b->makespan + kArrival),
              1e-9);
}

TEST(FluidTimedTest, UniformPolicyHonorsArrivalsAndConservesWork) {
  OverlapUsageModel usage(0.2);
  FluidSimulator sim(usage, SharingPolicy::kUniformSlowdown);
  Schedule s(1, 2);
  ASSERT_TRUE(s.PlaceAt(MakeUnitOp(0, {4.0, 6.0}, usage), 0, 0, 0.0).ok());
  ASSERT_TRUE(s.PlaceAt(MakeUnitOp(1, {5.0, 2.0}, usage), 0, 0, 1.0).ok());
  auto timed = sim.SimulateTimed(s);
  ASSERT_TRUE(timed.ok());
  // Work conservation survives the arrival split.
  EXPECT_NEAR(timed->sites[0].busy[0], 9.0, 1e-6);
  EXPECT_NEAR(timed->sites[0].busy[1], 8.0, 1e-6);
  // The late clone cannot finish before it starts plus its own time.
  EXPECT_GE(timed->clone_finish[1],
            1.0 + usage.SequentialTime({5.0, 2.0}) - 1e-9);
}

TEST(FluidTimedTest, UniformLateSoloCloneFinishesAtStartPlusSequential) {
  OverlapUsageModel usage(0.5);
  FluidSimulator sim(usage, SharingPolicy::kUniformSlowdown);
  Schedule s(2, 2);
  ASSERT_TRUE(s.PlaceAt(MakeUnitOp(0, {3.0, 1.0}, usage), 0, 1, 7.0).ok());
  auto timed = sim.SimulateTimed(s);
  ASSERT_TRUE(timed.ok());
  EXPECT_NEAR(timed->clone_finish[0],
              7.0 + usage.SequentialTime({3.0, 1.0}), 1e-9);
  EXPECT_DOUBLE_EQ(timed->sites[0].finish, 0.0);  // site 0 idles
}

TEST(FluidTimedTest, RealizesListScheduleTimeline) {
  // End-to-end: the timed simulation of a LISTSCHEDULE result reproduces
  // the engine's own virtual timeline site by site.
  PlanFixture fx = testing_util::PipelinedChainFixture(5);
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 6;
  ListScheduleOptions options;
  options.tree_guard = false;
  auto list = ListSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage, options);
  ASSERT_TRUE(list.ok());
  FluidSimulator sim(usage, SharingPolicy::kOptimalStretch);
  auto timed = sim.SimulateTimed(list->schedule);
  ASSERT_TRUE(timed.ok());
  EXPECT_NEAR(timed->makespan, list->makespan,
              1e-6 * std::max(1.0, list->makespan));
  for (int j = 0; j < machine.num_sites; ++j) {
    EXPECT_NEAR(timed->sites[static_cast<size_t>(j)].finish,
                list->schedule.SiteFinish(j), 1e-6)
        << "site " << j;
  }
}

TEST(FluidTimedTest, RejectsInconsistentCloneTimes) {
  OverlapUsageModel usage(0.5);
  FluidSimulator sim(usage);
  Schedule s(1, 2);
  ParallelizedOp bogus;
  bogus.op_id = 0;
  bogus.degree = 1;
  bogus.clones = {WorkVector({10.0, 10.0})};
  bogus.t_seq = {1.0};  // below the max-component floor
  bogus.t_par = 1.0;
  ASSERT_TRUE(s.Place(bogus, 0, 0).ok());
  EXPECT_FALSE(sim.SimulateTimed(s).ok());
}

}  // namespace
}  // namespace mrs
