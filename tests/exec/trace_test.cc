#include "exec/trace.h"

#include <gtest/gtest.h>

#include "core/tree_schedule.h"
#include "cost/parallelize_cache.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::PlanFixture;

TEST(SpanTimerTest, NullSinkIsANoOp) {
  SpanTimer span(nullptr, "stage");
  EXPECT_FALSE(span.active());
  span.Attr("k", "v");
  span.AttrDouble("d", 1.0);
  span.AttrInt("i", 2);
  span.End();  // must not crash
}

TEST(SpanTimerTest, RecordsSpanWithAttrs) {
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  {
    SpanTimer span(&trace, "stage", 3);
    EXPECT_TRUE(span.active());
    span.Attr("k", "v");
    span.AttrDouble("d", 0.5);
    span.AttrInt("i", -7);
  }
  const auto spans = trace.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "stage");
  EXPECT_EQ(spans[0].phase, 3);
  EXPECT_EQ(spans[0].start_ms, 0.0);
  EXPECT_EQ(spans[0].end_ms, 1.0);
  EXPECT_EQ(spans[0].DurationMs(), 1.0);
  ASSERT_NE(spans[0].FindAttr("k"), nullptr);
  EXPECT_EQ(*spans[0].FindAttr("k"), "v");
  EXPECT_EQ(*spans[0].FindAttr("d"), "0.5");
  EXPECT_EQ(*spans[0].FindAttr("i"), "-7");
  EXPECT_EQ(spans[0].FindAttr("absent"), nullptr);
}

TEST(SpanTimerTest, EndIsIdempotent) {
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  SpanTimer span(&trace, "once");
  span.End();
  span.Attr("late", "ignored");
  span.End();
  const auto spans = trace.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].FindAttr("late"), nullptr);
}

TEST(ScheduleTraceTest, CountingClockIsDeterministic) {
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  EXPECT_EQ(trace.NowMs(), 0.0);
  EXPECT_EQ(trace.NowMs(), 1.0);
  EXPECT_EQ(trace.NowMs(), 2.0);
}

TEST(ScheduleTraceTest, DefaultClockIsMonotone) {
  ScheduleTrace trace;
  const double a = trace.NowMs();
  const double b = trace.NowMs();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(ScheduleTraceTest, FindSpanAndLabel) {
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  trace.set_label("q1");
  EXPECT_EQ(trace.label(), "q1");
  { SpanTimer span(&trace, "a"); }
  { SpanTimer span(&trace, "b", 2); }
  TraceSpan out;
  EXPECT_TRUE(trace.FindSpan("b", &out));
  EXPECT_EQ(out.phase, 2);
  EXPECT_FALSE(trace.FindSpan("missing", nullptr));
}

TEST(ScheduleTraceTest, ToStringListsSpans) {
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  trace.set_label("demo");
  {
    SpanTimer span(&trace, "stage", 1);
    span.Attr("k", "v");
  }
  const std::string s = trace.ToString();
  EXPECT_NE(s.find("trace demo:"), std::string::npos) << s;
  EXPECT_NE(s.find("stage[phase 1]"), std::string::npos) << s;
  EXPECT_NE(s.find("k=v"), std::string::npos) << s;
}

class TreeScheduleTraceTest : public ::testing::Test {
 protected:
  TreeScheduleTraceTest() : fx_(BushyFourWayFixture()) {}

  Result<TreeScheduleResult> Run(const TreeScheduleOptions& options) {
    return TreeSchedule(fx_.op_tree, fx_.task_tree, fx_.costs, CostParams{},
                        machine_, usage_, options);
  }

  PlanFixture fx_;
  MachineConfig machine_;
  OverlapUsageModel usage_{0.5};
};

TEST_F(TreeScheduleTraceTest, RecordsEveryStage) {
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  TreeScheduleOptions options;
  options.trace = &trace;
  auto result = Run(options);
  ASSERT_TRUE(result.ok());

  // One parallelize + one operator_schedule span per phase, plus the
  // whole-call span last.
  const int phases = static_cast<int>(result->phases.size());
  int parallelize = 0;
  int operator_schedule = 0;
  const auto spans = trace.spans();
  for (const TraceSpan& span : spans) {
    if (span.name == "parallelize") ++parallelize;
    if (span.name == "operator_schedule") ++operator_schedule;
  }
  EXPECT_EQ(parallelize, phases);
  EXPECT_EQ(operator_schedule, phases);
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.back().name, "tree_schedule");

  TraceSpan call;
  ASSERT_TRUE(trace.FindSpan("tree_schedule", &call));
  ASSERT_NE(call.FindAttr("phases"), nullptr);
  EXPECT_EQ(*call.FindAttr("phases"), std::to_string(phases));
  EXPECT_NE(call.FindAttr("response_time_ms"), nullptr);
  // No cache configured: no cache attrs on the call span.
  EXPECT_EQ(call.FindAttr("cache.hits"), nullptr);
}

TEST_F(TreeScheduleTraceTest, AnnotatesDegreesAndBindingTerm) {
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  TreeScheduleOptions options;
  options.trace = &trace;
  auto result = Run(options);
  ASSERT_TRUE(result.ok());

  for (const TraceSpan& span : trace.spans()) {
    if (span.name == "parallelize") {
      // Every op of the phase carries a degree attr: "N/nmax=M" for
      // floating (coarse-grain) ops, "N:rooted" for rooted ones.
      int degree_attrs = 0;
      for (const auto& [key, value] : span.attrs) {
        if (key.rfind("op", 0) == 0 &&
            key.find(".degree") != std::string::npos) {
          ++degree_attrs;
          EXPECT_TRUE(value.find("/nmax=") != std::string::npos ||
                      value.find(":rooted") != std::string::npos)
              << key << "=" << value;
        }
      }
      const size_t phase_ops =
          result->phases[static_cast<size_t>(span.phase)].ops.size();
      EXPECT_EQ(static_cast<size_t>(degree_attrs), phase_ops);
    } else if (span.name == "operator_schedule") {
      ASSERT_NE(span.FindAttr("eq3_binding"), nullptr);
      const std::string& binding = *span.FindAttr("eq3_binding");
      EXPECT_TRUE(binding == "t_seq" ||
                  binding.rfind("congestion:", 0) == 0)
          << binding;
      EXPECT_NE(span.FindAttr("critical_site"), nullptr);
      EXPECT_NE(span.FindAttr("makespan_ms"), nullptr);
    }
  }
}

TEST_F(TreeScheduleTraceTest, MalleablePolicyRecordsSelectionSpan) {
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  TreeScheduleOptions options;
  options.trace = &trace;
  options.policy = ParallelizationPolicy::kMalleable;
  auto result = Run(options);
  ASSERT_TRUE(result.ok());

  TraceSpan span;
  ASSERT_TRUE(trace.FindSpan("malleable_select", &span));
  EXPECT_NE(span.FindAttr("lower_bound_ms"), nullptr);
  EXPECT_NE(span.FindAttr("floating_ops"), nullptr);
  // Degrees are tagged with the policy that chose them.
  TraceSpan par;
  ASSERT_TRUE(trace.FindSpan("parallelize", &par));
  bool saw_malleable = false;
  for (const auto& [key, value] : par.attrs) {
    if (value.find(":malleable") != std::string::npos) saw_malleable = true;
  }
  EXPECT_TRUE(saw_malleable);
}

TEST_F(TreeScheduleTraceTest, CacheCountsPerStage) {
  MetricsRegistry registry;
  ParallelizeCache cache(CostParams{}, usage_.epsilon(), 0.7,
                         machine_.num_sites, &registry);
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  TreeScheduleOptions options;
  options.trace = &trace;
  options.cache = &cache;
  auto result = Run(options);
  ASSERT_TRUE(result.ok());

  // Per-phase and whole-call cache deltas must agree with the cache's own
  // counters (single accounting path).
  uint64_t phase_hits = 0;
  uint64_t phase_misses = 0;
  for (const TraceSpan& span : trace.spans()) {
    if (span.name != "parallelize") continue;
    ASSERT_NE(span.FindAttr("cache.hits"), nullptr);
    ASSERT_NE(span.FindAttr("cache.misses"), nullptr);
    phase_hits += std::stoull(*span.FindAttr("cache.hits"));
    phase_misses += std::stoull(*span.FindAttr("cache.misses"));
  }
  TraceSpan call;
  ASSERT_TRUE(trace.FindSpan("tree_schedule", &call));
  EXPECT_EQ(std::stoull(*call.FindAttr("cache.hits")), cache.counter().hits());
  EXPECT_EQ(std::stoull(*call.FindAttr("cache.misses")),
            cache.counter().misses());
  EXPECT_EQ(phase_hits, cache.counter().hits());
  EXPECT_EQ(phase_misses, cache.counter().misses());
}

TEST_F(TreeScheduleTraceTest, TracingDoesNotChangeTheSchedule) {
  TreeScheduleOptions options;
  auto base = Run(options);
  ASSERT_TRUE(base.ok());
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  options.trace = &trace;
  auto traced = Run(options);
  ASSERT_TRUE(traced.ok());
  EXPECT_EQ(base->response_time, traced->response_time);
  ASSERT_EQ(base->phases.size(), traced->phases.size());
  for (size_t k = 0; k < base->phases.size(); ++k) {
    EXPECT_EQ(base->phases[k].makespan, traced->phases[k].makespan);
  }
}

}  // namespace
}  // namespace mrs
