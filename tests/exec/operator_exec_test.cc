// Unit tests for the real partitioned operator runtime (exec/operators.h):
// the clone-parallel hash join and two-phase group-by are cross-checked
// against single-threaded references that share no code with the hash
// path (sort + binary search, sort + run-length scan), across degrees
// 1..8, uniform and skewed key distributions, duplicate-heavy domains,
// and empty inputs. Every comparison covers row counts, an independent
// arithmetic invariant (key sum / payload sum), and the order-independent
// output digest — so a mismatch in any joined row or group is caught.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "exec/operators.h"
#include "workload/exec_data.h"

namespace mrs {
namespace {

// --- Deterministic data synthesis (workload/exec_data.h). ---

TEST(ExecDataTest, SynthesisIsAPureFunctionOfSeedAndIndex) {
  const ExecKeyDist dist{1000, 0.0};
  const ExecRow a = SynthesizeRow(42, 7, dist);
  const ExecRow b = SynthesizeRow(42, 7, dist);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.payload, b.payload);
  const ExecRow c = SynthesizeRow(43, 7, dist);
  const ExecRow d = SynthesizeRow(42, 8, dist);
  EXPECT_TRUE(a.key != c.key || a.payload != c.payload);
  EXPECT_TRUE(a.key != d.key || a.payload != d.payload);
}

TEST(ExecDataTest, KeysStayInDomain) {
  for (double skew : {0.0, 0.5, 0.9}) {
    const ExecKeyDist dist{37, skew};
    for (uint64_t i = 0; i < 500; ++i) {
      const ExecRow row = SynthesizeRow(11, i, dist);
      EXPECT_LT(row.key, dist.domain) << "skew " << skew << " index " << i;
    }
  }
}

TEST(ExecDataTest, SkewConcentratesMassOnLowKeys) {
  const int64_t rows = 4000;
  const ExecKeyDist uniform{1000, 0.0};
  const ExecKeyDist skewed{1000, 0.8};
  int64_t uniform_low = 0;
  int64_t skewed_low = 0;
  for (int64_t i = 0; i < rows; ++i) {
    if (SynthesizeRow(5, static_cast<uint64_t>(i), uniform).key < 100) {
      ++uniform_low;
    }
    if (SynthesizeRow(5, static_cast<uint64_t>(i), skewed).key < 100) {
      ++skewed_low;
    }
  }
  // Uniform puts ~10% of rows on the lowest decile; skew 0.8 puts the
  // majority there (the power transform sends u^5 to the low end).
  EXPECT_LT(uniform_low, rows / 5);
  EXPECT_GT(skewed_low, rows / 2);
}

TEST(ExecDataTest, PartitionOfIsInRangeAndTotal) {
  for (int degree : {1, 2, 3, 8}) {
    for (uint64_t key = 0; key < 200; ++key) {
      const int p = PartitionOf(key, degree);
      EXPECT_GE(p, 0);
      EXPECT_LT(p, degree);
      EXPECT_EQ(p, PartitionOf(key, degree)) << "partition must be stable";
    }
  }
  EXPECT_EQ(PartitionOf(123, 1), 0);
  EXPECT_EQ(PartitionOf(123, 0), 0);
}

TEST(ExecDataTest, ValidateKeyDistRejectsBadKnobs) {
  EXPECT_TRUE(ValidateKeyDist(ExecKeyDist{1, 0.0}).ok());
  EXPECT_TRUE(ValidateKeyDist(ExecKeyDist{100, 0.99}).ok());
  EXPECT_FALSE(ValidateKeyDist(ExecKeyDist{0, 0.0}).ok());
  EXPECT_FALSE(ValidateKeyDist(ExecKeyDist{10, 1.0}).ok());
  EXPECT_FALSE(ValidateKeyDist(ExecKeyDist{10, -0.1}).ok());
}

// --- Hash / group tables. ---

TEST(ExecHashTableTest, FindsAllDuplicatesOfAKey) {
  ExecHashTable table;
  table.Reset(8);
  table.Insert(5, 100);
  table.Insert(5, 200);
  table.Insert(7, 300);
  table.Insert(5, 400);
  std::vector<uint64_t> matches;
  table.ForEachMatch(5, [&](uint64_t payload) { matches.push_back(payload); });
  ASSERT_EQ(matches.size(), 3u);
  uint64_t sum = 0;
  for (uint64_t m : matches) sum += m;
  EXPECT_EQ(sum, 700u);
  matches.clear();
  table.ForEachMatch(9, [&](uint64_t payload) { matches.push_back(payload); });
  EXPECT_TRUE(matches.empty());
}

TEST(ExecHashTableTest, GrowsUnderInsertAndResetKeepsCapacity) {
  ExecHashTable table;
  table.Reset(4);
  for (uint64_t i = 0; i < 1000; ++i) table.Insert(i, i * 3);
  EXPECT_EQ(table.size(), 1000u);
  const size_t grown = table.capacity();
  table.Reset(1000);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.capacity(), grown) << "Reset must keep the storage";
  int found = 0;
  table.ForEachMatch(1, [&](uint64_t) { ++found; });
  EXPECT_EQ(found, 0) << "Reset must clear the occupancy bitmap";
}

TEST(ExecGroupTableTest, AccumulateAndMergeAgree) {
  ExecGroupTable direct;
  direct.Reset(16);
  for (uint64_t i = 0; i < 300; ++i) direct.Accumulate(i % 13, i);

  ExecGroupTable half_a;
  ExecGroupTable half_b;
  half_a.Reset(16);
  half_b.Reset(16);
  for (uint64_t i = 0; i < 300; ++i) {
    (i % 2 == 0 ? half_a : half_b).Accumulate(i % 13, i);
  }
  ExecGroupTable merged;
  merged.Reset(16);
  half_a.ForEachGroup([&](uint64_t key, uint64_t count, uint64_t sum) {
    merged.Merge(key, count, sum);
  });
  half_b.ForEachGroup([&](uint64_t key, uint64_t count, uint64_t sum) {
    merged.Merge(key, count, sum);
  });

  EXPECT_EQ(direct.num_groups(), merged.num_groups());
  uint64_t direct_digest = 0;
  uint64_t merged_digest = 0;
  direct.ForEachGroup([&](uint64_t key, uint64_t count, uint64_t sum) {
    direct_digest += GroupOutputDigest(key, count, sum);
  });
  merged.ForEachGroup([&](uint64_t key, uint64_t count, uint64_t sum) {
    merged_digest += GroupOutputDigest(key, count, sum);
  });
  EXPECT_EQ(direct_digest, merged_digest);
}

// --- Partitioned hash join vs the sort-based reference. ---

void ExpectJoinsAgree(const HashJoinExecution& got,
                      const HashJoinExecution& want,
                      const HashJoinSpec& spec) {
  EXPECT_EQ(got.output_rows, want.output_rows);
  EXPECT_EQ(got.key_sum, want.key_sum);
  EXPECT_EQ(got.output_digest, want.output_digest);
  // Clone accounting must cover the whole input exactly once.
  ASSERT_EQ(static_cast<int>(got.build_clones.size()), spec.degree);
  ASSERT_EQ(static_cast<int>(got.probe_clones.size()), spec.degree);
  int64_t build_in = 0;
  int64_t probe_in = 0;
  int64_t probe_out = 0;
  for (const OperatorExecStats& s : got.build_clones) build_in += s.rows_in;
  for (const OperatorExecStats& s : got.probe_clones) {
    probe_in += s.rows_in;
    probe_out += s.rows_out;
  }
  EXPECT_EQ(build_in, spec.build_rows);
  EXPECT_EQ(probe_in, spec.probe_rows);
  EXPECT_EQ(probe_out, got.output_rows);
}

TEST(PartitionedHashJoinTest, MatchesReferenceAcrossDegrees) {
  ThreadPool pool(4);
  for (int degree = 1; degree <= 8; ++degree) {
    HashJoinSpec spec;
    spec.build_rows = 1500;
    spec.probe_rows = 3000;
    spec.dist = ExecKeyDist{500, 0.0};
    spec.degree = degree;
    const HashJoinExecution want = ReferenceHashJoin(spec);
    const HashJoinExecution got = ExecutePartitionedHashJoin(spec, &pool);
    SCOPED_TRACE(::testing::Message() << "degree " << degree);
    EXPECT_GT(want.output_rows, 0) << "fixture should produce matches";
    ExpectJoinsAgree(got, want, spec);
  }
}

TEST(PartitionedHashJoinTest, MatchesReferenceUnderSkew) {
  ThreadPool pool(4);
  for (double skew : {0.3, 0.6}) {
    HashJoinSpec spec;
    spec.build_rows = 800;
    spec.probe_rows = 2000;
    spec.dist = ExecKeyDist{400, skew};
    spec.degree = 5;
    SCOPED_TRACE(::testing::Message() << "skew " << skew);
    ExpectJoinsAgree(ExecutePartitionedHashJoin(spec, &pool),
                     ReferenceHashJoin(spec), spec);
  }
}

TEST(PartitionedHashJoinTest, DuplicateHeavyDomainMatchesReference) {
  ThreadPool pool(4);
  HashJoinSpec spec;
  spec.build_rows = 300;
  spec.probe_rows = 300;
  // 16 distinct keys over 300 rows: every probe row matches ~19 build
  // rows, so the multi-match path (duplicate chains) carries the test.
  spec.dist = ExecKeyDist{16, 0.0};
  spec.degree = 4;
  const HashJoinExecution want = ReferenceHashJoin(spec);
  EXPECT_GT(want.output_rows, spec.probe_rows)
      << "fixture should fan out on duplicates";
  ExpectJoinsAgree(ExecutePartitionedHashJoin(spec, &pool), want, spec);
}

TEST(PartitionedHashJoinTest, EmptySidesProduceNothing) {
  ThreadPool pool(2);
  HashJoinSpec empty_build;
  empty_build.build_rows = 0;
  empty_build.probe_rows = 500;
  empty_build.dist = ExecKeyDist{100, 0.0};
  empty_build.degree = 3;
  const HashJoinExecution no_build =
      ExecutePartitionedHashJoin(empty_build, &pool);
  EXPECT_EQ(no_build.output_rows, 0);
  EXPECT_EQ(no_build.output_digest, 0u);
  ExpectJoinsAgree(no_build, ReferenceHashJoin(empty_build), empty_build);

  HashJoinSpec empty_probe;
  empty_probe.build_rows = 500;
  empty_probe.probe_rows = 0;
  empty_probe.dist = ExecKeyDist{100, 0.0};
  empty_probe.degree = 3;
  const HashJoinExecution no_probe =
      ExecutePartitionedHashJoin(empty_probe, &pool);
  EXPECT_EQ(no_probe.output_rows, 0);
  ExpectJoinsAgree(no_probe, ReferenceHashJoin(empty_probe), empty_probe);
}

TEST(PartitionedHashJoinTest, PoolAndInlineExecutionsAreIdentical) {
  HashJoinSpec spec;
  spec.build_rows = 1200;
  spec.probe_rows = 2400;
  spec.dist = ExecKeyDist{300, 0.4};
  spec.degree = 6;
  ThreadPool pool(4);
  const HashJoinExecution threaded = ExecutePartitionedHashJoin(spec, &pool);
  const HashJoinExecution inline_run =
      ExecutePartitionedHashJoin(spec, nullptr);
  EXPECT_EQ(threaded.output_rows, inline_run.output_rows);
  EXPECT_EQ(threaded.output_digest, inline_run.output_digest);
  EXPECT_EQ(threaded.key_sum, inline_run.key_sum);
  for (int k = 0; k < spec.degree; ++k) {
    EXPECT_EQ(threaded.build_clones[static_cast<size_t>(k)].digest,
              inline_run.build_clones[static_cast<size_t>(k)].digest);
    EXPECT_EQ(threaded.probe_clones[static_cast<size_t>(k)].digest,
              inline_run.probe_clones[static_cast<size_t>(k)].digest);
  }
}

TEST(PartitionedHashJoinTest, ProbeAgainstNoTablesIsEmpty) {
  uint64_t key_sum = 0;
  const OperatorExecStats stats = ProbeCloneSlice(
      7, 100, ExecKeyDist{10, 0.0}, /*clone=*/0, /*degree=*/1,
      /*tables=*/{}, &key_sum);
  EXPECT_EQ(stats.rows_out, 0);
  EXPECT_EQ(key_sum, 0u);
}

// --- Two-phase group-by vs the sort-based reference. ---

void ExpectGroupBysAgree(const GroupByExecution& got,
                         const GroupByExecution& want,
                         const GroupBySpec& spec) {
  EXPECT_EQ(got.groups, want.groups);
  EXPECT_EQ(got.payload_sum, want.payload_sum);
  EXPECT_EQ(got.group_digest, want.group_digest);
  ASSERT_EQ(static_cast<int>(got.accumulate_clones.size()), spec.degree);
  const int out_degree =
      spec.output_degree > 0 ? spec.output_degree : spec.degree;
  ASSERT_EQ(static_cast<int>(got.emit_clones.size()), out_degree);
  int64_t rows_in = 0;
  int64_t groups_out = 0;
  for (const OperatorExecStats& s : got.accumulate_clones) {
    rows_in += s.rows_in;
  }
  for (const OperatorExecStats& s : got.emit_clones) groups_out += s.rows_out;
  EXPECT_EQ(rows_in, spec.rows);
  EXPECT_EQ(groups_out, got.groups);
}

TEST(TwoPhaseGroupByTest, MatchesReferenceAcrossDegrees) {
  ThreadPool pool(4);
  for (int degree = 1; degree <= 8; ++degree) {
    GroupBySpec spec;
    spec.rows = 2500;
    spec.dist = ExecKeyDist{200, 0.0};
    spec.degree = degree;
    SCOPED_TRACE(::testing::Message() << "degree " << degree);
    const GroupByExecution want = ReferenceGroupBy(spec);
    EXPECT_GT(want.groups, 0);
    ExpectGroupBysAgree(ExecuteTwoPhaseGroupBy(spec, &pool), want, spec);
  }
}

TEST(TwoPhaseGroupByTest, MatchesReferenceWithDifferingPhaseDegrees) {
  ThreadPool pool(4);
  GroupBySpec spec;
  spec.rows = 2000;
  spec.dist = ExecKeyDist{150, 0.5};
  spec.degree = 7;
  spec.output_degree = 3;
  ExpectGroupBysAgree(ExecuteTwoPhaseGroupBy(spec, &pool),
                      ReferenceGroupBy(spec), spec);
}

TEST(TwoPhaseGroupByTest, HotKeySkewMatchesReference) {
  ThreadPool pool(4);
  GroupBySpec spec;
  spec.rows = 3000;
  // skew 0.9 over a tiny domain: a handful of keys dominate, so one
  // partition carries nearly all rows — the imbalance EA1 assumes away.
  spec.dist = ExecKeyDist{32, 0.9};
  spec.degree = 6;
  ExpectGroupBysAgree(ExecuteTwoPhaseGroupBy(spec, &pool),
                      ReferenceGroupBy(spec), spec);
}

TEST(TwoPhaseGroupByTest, EmptyInputYieldsNoGroups) {
  GroupBySpec spec;
  spec.rows = 0;
  spec.dist = ExecKeyDist{10, 0.0};
  spec.degree = 4;
  const GroupByExecution got = ExecuteTwoPhaseGroupBy(spec, nullptr);
  EXPECT_EQ(got.groups, 0);
  EXPECT_EQ(got.payload_sum, 0u);
  EXPECT_EQ(got.group_digest, 0u);
  ExpectGroupBysAgree(got, ReferenceGroupBy(spec), spec);
}

TEST(TwoPhaseGroupByTest, PayloadSumIsConserved) {
  GroupBySpec spec;
  spec.rows = 1800;
  spec.dist = ExecKeyDist{64, 0.3};
  spec.degree = 5;
  const GroupByExecution got = ExecuteTwoPhaseGroupBy(spec, nullptr);
  uint64_t want_sum = 0;
  for (int64_t i = 0; i < spec.rows; ++i) {
    want_sum += SynthesizeRow(spec.seed, static_cast<uint64_t>(i),
                              spec.dist).payload;
  }
  EXPECT_EQ(got.payload_sum, want_sum)
      << "phase 2 must account for every accumulated row";
}

}  // namespace
}  // namespace mrs
