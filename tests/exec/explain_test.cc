#include "exec/explain.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::PlanFixture;

TEST(ExplainTest, PhasesAndResponseMatchSchedule) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 8;
  auto plan = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage);
  ASSERT_TRUE(plan.ok());
  const ScheduleExplanation exp = ExplainSchedule(*plan);
  EXPECT_DOUBLE_EQ(exp.response_time, plan->response_time);
  ASSERT_EQ(exp.phases.size(), plan->phases.size());
  for (size_t k = 0; k < exp.phases.size(); ++k) {
    EXPECT_DOUBLE_EQ(exp.phases[k].makespan, plan->phases[k].makespan);
    // The critical site realizes the makespan.
    const int cs = exp.phases[k].critical_site;
    ASSERT_GE(cs, 0);
    EXPECT_NEAR(plan->phases[k].schedule.SiteTime(cs),
                plan->phases[k].makespan, 1e-9);
    // Utilization is a valid fraction per resource.
    ASSERT_EQ(exp.phases[k].utilization.size(), 3u);
    for (double u : exp.phases[k].utilization) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0 + 1e-9);
    }
    // The heaviest op is actually placed at the critical site.
    bool found = false;
    for (int p : plan->phases[k].schedule.SitePlacements(cs)) {
      if (plan->phases[k]
              .schedule.placements()[static_cast<size_t>(p)]
              .op_id == exp.phases[k].heaviest_op) {
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(ExplainTest, LoadBoundConsistentWithEquationTwo) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.3);
  MachineConfig machine;
  machine.num_sites = 4;
  auto plan = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage);
  ASSERT_TRUE(plan.ok());
  const ScheduleExplanation exp = ExplainSchedule(*plan);
  for (size_t k = 0; k < exp.phases.size(); ++k) {
    const auto& phase = plan->phases[k];
    const int cs = exp.phases[k].critical_site;
    double max_t_seq = 0.0;
    for (int p : phase.schedule.SitePlacements(cs)) {
      max_t_seq = std::max(
          max_t_seq,
          phase.schedule.placements()[static_cast<size_t>(p)].t_seq);
    }
    const double load = phase.schedule.SiteLoadLength(cs);
    EXPECT_EQ(exp.phases[k].load_bound, load >= max_t_seq);
  }
}

TEST(ExplainTest, ReportMentionsResourcesByName) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 6;
  ASSERT_TRUE(machine.Validate().ok());
  auto plan = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage);
  ASSERT_TRUE(plan.ok());
  const std::string report = ExplainSchedule(*plan).ToString(machine);
  EXPECT_NE(report.find("schedule explanation"), std::string::npos);
  EXPECT_NE(report.find("critical site"), std::string::npos);
  EXPECT_NE(report.find("cpu="), std::string::npos);
}

TEST(ExplainTest, EmptyResult) {
  TreeScheduleResult empty;
  const ScheduleExplanation exp = ExplainSchedule(empty);
  EXPECT_TRUE(exp.phases.empty());
  MachineConfig machine;
  ASSERT_TRUE(machine.Validate().ok());
  EXPECT_FALSE(exp.ToString(machine).empty());
}

}  // namespace
}  // namespace mrs
