// Tests for the backend split (exec/exec_backend.h): the factory, the
// SimulateBackend's equivalence with the raw fluid simulator, and the
// ExecuteBackend's contracts — deterministic digests across thread
// counts, row-cap accounting, cross-phase state (probe after build),
// error paths for dangling blocking edges, and the allocation-free
// steady state of the operator hot loops.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "alloc_counter.h"
#include "core/tree_schedule.h"
#include "cost/parallelize.h"
#include "exec/calibrate.h"
#include "exec/exec_backend.h"
#include "exec/execute_backend.h"
#include "exec/fluid_simulator.h"
#include "exec/operators.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::PipelinedChainFixture;
using testing_util::PlanFixture;

struct BackendFixture {
  PlanFixture fx;
  MachineConfig machine;
  OverlapUsageModel usage{0.5};
  TreeScheduleResult plan;
  std::vector<ExecOpSpec> specs;
};

BackendFixture MakeBackendFixture(PlanFixture fx) {
  BackendFixture b;
  b.fx = std::move(fx);
  auto plan = TreeSchedule(b.fx.op_tree, b.fx.task_tree, b.fx.costs,
                           CostParams{}, b.machine, b.usage);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  b.plan = std::move(plan).value();
  b.specs = ExecOpSpecsFromTree(b.fx.op_tree);
  return b;
}

TEST(ExecOpSpecsTest, SpecsMirrorTheOperatorTree) {
  const PlanFixture fx = BushyFourWayFixture();
  const std::vector<ExecOpSpec> specs = ExecOpSpecsFromTree(fx.op_tree);
  ASSERT_EQ(static_cast<int>(specs.size()), fx.op_tree.num_ops());
  int probes = 0;
  for (const ExecOpSpec& spec : specs) {
    EXPECT_EQ(spec.op_id, specs[static_cast<size_t>(spec.op_id)].op_id)
        << "specs must be indexed by operator id";
    if (spec.kind == OperatorKind::kProbe) {
      ++probes;
      ASSERT_GE(spec.blocking_input, 0) << "probe must name its build";
      EXPECT_EQ(specs[static_cast<size_t>(spec.blocking_input)].kind,
                OperatorKind::kBuild);
    }
  }
  EXPECT_EQ(probes, 3) << "bushy four-way plan has three joins";
}

TEST(ExecBackendFactoryTest, ResolvesModesAndRejectsUnknown) {
  const OverlapUsageModel usage(0.5);
  auto simulate = MakeExecBackend("simulate", usage);
  ASSERT_TRUE(simulate.ok());
  EXPECT_EQ((*simulate)->name(), "simulate");
  auto execute = MakeExecBackend("execute", usage);
  ASSERT_TRUE(execute.ok());
  EXPECT_EQ((*execute)->name(), "execute");
  EXPECT_FALSE(MakeExecBackend("warp-drive", usage).ok());
}

TEST(SimulateBackendTest, MatchesTheRawFluidSimulator) {
  BackendFixture b = MakeBackendFixture(BushyFourWayFixture());
  SimulateBackend backend(b.usage);
  const FluidSimulator simulator(b.usage);
  for (const PhaseSchedule& phase : b.plan.phases) {
    auto run = backend.Run(phase.schedule, b.specs);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    auto sim = simulator.SimulateTimed(phase.schedule);
    ASSERT_TRUE(sim.ok()) << sim.status().ToString();
    EXPECT_EQ(run->timeline.makespan, sim->makespan);
    ASSERT_EQ(run->timeline.clone_finish.size(), sim->clone_finish.size());
    for (size_t p = 0; p < sim->clone_finish.size(); ++p) {
      EXPECT_EQ(run->timeline.clone_finish[p], sim->clone_finish[p]);
      // The simulator's "measurement" is the model's own T_seq.
      EXPECT_EQ(run->clones[p].measured_ms,
                phase.schedule.placements()[p].t_seq);
    }
  }
}

Result<std::vector<ExecutionResult>> RunWholePlan(const BackendFixture& b,
                                                  int threads) {
  ExecuteOptions options;
  options.meter = ExecMeter::kDeterministic;
  options.threads = threads;
  ExecuteBackend backend(options);
  return backend.RunTree(b.plan, b.specs);
}

TEST(ExecuteBackendTest, DigestsAreByteIdenticalAcrossThreadCounts) {
  BackendFixture b = MakeBackendFixture(BushyFourWayFixture());
  auto one = RunWholePlan(b, 1);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  auto four = RunWholePlan(b, 4);
  ASSERT_TRUE(four.ok()) << four.status().ToString();
  ASSERT_EQ(one->size(), four->size());
  for (size_t phase = 0; phase < one->size(); ++phase) {
    const ExecutionResult& a = (*one)[phase];
    const ExecutionResult& c = (*four)[phase];
    EXPECT_EQ(a.digest, c.digest) << "phase " << phase;
    EXPECT_EQ(a.rows_out, c.rows_out);
    EXPECT_EQ(a.timeline.makespan, c.timeline.makespan);
    ASSERT_EQ(a.clones.size(), c.clones.size());
    for (size_t p = 0; p < a.clones.size(); ++p) {
      EXPECT_EQ(a.clones[p].rows_in, c.clones[p].rows_in);
      EXPECT_EQ(a.clones[p].rows_out, c.clones[p].rows_out);
      // The deterministic meter is a pure function of the row counts, so
      // even "measured" times replay byte-identically.
      EXPECT_EQ(a.clones[p].measured_ms, c.clones[p].measured_ms);
      EXPECT_EQ(a.clones[p].virtual_start, c.clones[p].virtual_start);
      EXPECT_EQ(a.clones[p].virtual_finish, c.clones[p].virtual_finish);
    }
  }
}

TEST(ExecuteBackendTest, RowCapBindsAndReportsTheFraction) {
  BackendFixture b = MakeBackendFixture(BushyFourWayFixture());
  ExecuteOptions options;
  options.meter = ExecMeter::kDeterministic;
  options.max_rows_per_op = 100;
  options.threads = 2;
  ExecuteBackend backend(options);
  auto runs = backend.RunTree(b.plan, b.specs);
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();
  for (const ExecutionResult& run : *runs) {
    for (const CloneExecution& clone : run.clones) {
      const ExecOpSpec& spec = b.specs[static_cast<size_t>(clone.op_id)];
      EXPECT_GE(clone.row_fraction, 0.0);
      EXPECT_LE(clone.row_fraction, 1.0);
      if (spec.input_tuples > 100) {
        EXPECT_NEAR(clone.row_fraction,
                    100.0 / static_cast<double>(spec.input_tuples), 1e-12);
      }
    }
  }
}

TEST(ExecuteBackendTest, UncappedRunExecutesTheModeledCardinality) {
  BackendFixture b = MakeBackendFixture(
      testing_util::BushyFourWayFixture({500, 300, 400, 200}));
  ExecuteOptions options;
  options.meter = ExecMeter::kDeterministic;
  options.max_rows_per_op = 0;  // uncapped
  options.threads = 2;
  ExecuteBackend backend(options);
  auto runs = backend.RunTree(b.plan, b.specs);
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();
  for (const ExecutionResult& run : *runs) {
    for (const CloneExecution& clone : run.clones) {
      EXPECT_EQ(clone.row_fraction, 1.0);
    }
  }
}

/// A probe scheduled with neither its build in the schedule nor build
/// state from an earlier phase must fail loudly, and Reset must drop the
/// state that made it work.
TEST(ExecuteBackendTest, DanglingBlockingEdgeFailsAndResetDropsState) {
  BackendFixture b = MakeBackendFixture(BushyFourWayFixture());
  // Find a probe phase (every phase after the first contains probes).
  ASSERT_GE(b.plan.phases.size(), 2u);
  const PhaseSchedule& build_phase = b.plan.phases[0];
  const PhaseSchedule& probe_phase = b.plan.phases[1];

  ExecuteOptions options;
  options.meter = ExecMeter::kDeterministic;
  ExecuteBackend backend(options);
  // Probe phase without its build phase: dangling blocking edge.
  EXPECT_FALSE(backend.Run(probe_phase.schedule, b.specs).ok());

  // Build then probe succeeds...
  ASSERT_TRUE(backend.Run(build_phase.schedule, b.specs).ok());
  EXPECT_TRUE(backend.Run(probe_phase.schedule, b.specs).ok());

  // ...and Reset forgets the materialized tables.
  backend.Reset();
  EXPECT_FALSE(backend.Run(probe_phase.schedule, b.specs).ok());
}

TEST(ExecuteBackendTest, RejectsUnknownSkew) {
  BackendFixture b = MakeBackendFixture(BushyFourWayFixture());
  ExecuteOptions options;
  options.skew = 1.5;  // outside [0, 1)
  ExecuteBackend backend(options);
  EXPECT_FALSE(backend.Run(b.plan.phases[0].schedule, b.specs).ok());
}

TEST(ExecuteBackendTest, ExplainRendersSitesAndClones) {
  BackendFixture b = MakeBackendFixture(BushyFourWayFixture());
  ExecuteOptions options;
  options.meter = ExecMeter::kDeterministic;
  ExecuteBackend backend(options);
  auto run = backend.Run(b.plan.phases[0].schedule, b.specs);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const std::string text = ExplainExecution(*run, b.machine);
  EXPECT_NE(text.find("EXECUTION"), std::string::npos);
  EXPECT_NE(text.find("makespan="), std::string::npos);
  EXPECT_NE(text.find("site "), std::string::npos);
  EXPECT_EQ(text.find("wall="), std::string::npos)
      << "wall time must stay out of the deterministic rendering";
  const std::string with_wall =
      ExplainExecution(*run, b.machine, /*wall=*/true);
  EXPECT_NE(with_wall.find("wall="), std::string::npos);
}

/// The execute path's skew knob changes the generated keys (and hence the
/// digest) but not the virtual timeline, which depends only on the
/// schedule's predicted work.
TEST(ExecuteBackendTest, SkewChangesDataNotTheTimeline) {
  BackendFixture b = MakeBackendFixture(BushyFourWayFixture());
  ExecuteOptions uniform;
  uniform.meter = ExecMeter::kDeterministic;
  ExecuteOptions skewed = uniform;
  skewed.skew = 0.8;
  ExecuteBackend a(uniform);
  ExecuteBackend c(skewed);
  auto run_a = a.RunTree(b.plan, b.specs);
  auto run_c = c.RunTree(b.plan, b.specs);
  ASSERT_TRUE(run_a.ok() && run_c.ok());
  uint64_t digest_a = 0;
  uint64_t digest_c = 0;
  for (size_t i = 0; i < run_a->size(); ++i) {
    digest_a += (*run_a)[i].digest;
    digest_c += (*run_c)[i].digest;
    EXPECT_EQ((*run_a)[i].timeline.makespan, (*run_c)[i].timeline.makespan);
  }
  EXPECT_NE(digest_a, digest_c);
}

// --- Allocation-free steady state of the operator hot loops. ---

TEST(ExecAllocTest, HashTableSteadyStateIsAllocationFree) {
  if (!testing_util::AllocCountingAvailable()) {
    GTEST_SKIP() << "allocation counting unavailable (sanitizer build)";
  }
  const ExecKeyDist dist{256, 0.0};
  const int64_t rows = 2000;
  ExecHashTable table;
  // Warm-up pass sizes the storage.
  (void)BuildClonePartition(1, rows, dist, /*clone=*/0, /*degree=*/1, &table);

  // Bind `tables` outside the counted region; the build and probe loops
  // themselves must not allocate.
  uint64_t key_sum = 0;
  std::vector<const ExecHashTable*> tables = {&table};

  const uint64_t before = testing_util::AllocCount();
  (void)BuildClonePartition(1, rows, dist, /*clone=*/0, /*degree=*/1, &table);
  const uint64_t before_probe = testing_util::AllocCount();
  (void)ProbeCloneSlice(2, rows, dist, /*clone=*/0, /*degree=*/1, tables,
                        &key_sum);
  const uint64_t after = testing_util::AllocCount();
  EXPECT_EQ(before, before_probe)
      << "steady-state build pass must not allocate";
  EXPECT_EQ(before_probe, after) << "probe loop must not allocate";
}

TEST(ExecAllocTest, GroupTableSteadyStateIsAllocationFree) {
  if (!testing_util::AllocCountingAvailable()) {
    GTEST_SKIP() << "allocation counting unavailable (sanitizer build)";
  }
  const ExecKeyDist dist{128, 0.2};
  const int64_t rows = 2000;
  ExecGroupTable partial;
  (void)AccumulateCloneSlice(1, rows, dist, /*clone=*/0, /*degree=*/1,
                             &partial);
  const uint64_t before = testing_util::AllocCount();
  (void)AccumulateCloneSlice(1, rows, dist, /*clone=*/0, /*degree=*/1,
                             &partial);
  const uint64_t after = testing_util::AllocCount();
  EXPECT_EQ(before, after) << "steady-state accumulate must not allocate";
}

}  // namespace
}  // namespace mrs
