#include "exec/gantt.h"

#include <gtest/gtest.h>

#include "core/tree_schedule.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::MakeUnitOp;
using testing_util::PlanFixture;

TEST(GanttTest, PhaseGanttListsAllSites) {
  OverlapUsageModel usage(0.5);
  Schedule s(3, 2);
  ASSERT_TRUE(s.Place(MakeUnitOp(0, {5.0, 1.0}, usage), 0, 1).ok());
  const std::string out = RenderPhaseGantt(s, 40);
  EXPECT_NE(out.find("s0"), std::string::npos);
  EXPECT_NE(out.find("s1"), std::string::npos);
  EXPECT_NE(out.find("s2"), std::string::npos);
  EXPECT_NE(out.find("op0.0"), std::string::npos);
  EXPECT_NE(out.find("#"), std::string::npos);
}

TEST(GanttTest, EmptyScheduleRendersWithoutBars) {
  Schedule s(2, 2);
  const std::string out = RenderPhaseGantt(s, 40);
  EXPECT_EQ(out.find("#"), std::string::npos);
}

TEST(GanttTest, TreeGanttShowsAllPhases) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 6;
  auto plan = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage);
  ASSERT_TRUE(plan.ok());
  const std::string out = RenderTreeGantt(*plan, 60);
  for (size_t k = 0; k < plan->phases.size(); ++k) {
    EXPECT_NE(out.find("phase " + std::to_string(k)), std::string::npos);
  }
  EXPECT_NE(out.find("response time"), std::string::npos);
}

TEST(GanttTest, SvgIsWellFormedAndCoversAllClones) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 5;
  auto plan = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage);
  ASSERT_TRUE(plan.ok());
  const std::string svg = RenderTreeGanttSvg(*plan, 800);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One <rect> per placement across all phases.
  size_t placements = 0;
  for (const auto& phase : plan->phases) {
    placements += phase.schedule.placements().size();
  }
  size_t rects = 0;
  size_t pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    pos += 5;
  }
  EXPECT_EQ(rects, placements);
  // Every site lane labeled once.
  EXPECT_NE(svg.find(">s0<"), std::string::npos);
  EXPECT_NE(svg.find(">s4<"), std::string::npos);
  // Phase boundary markers: one dashed line per phase.
  size_t lines = 0;
  pos = 0;
  while ((pos = svg.find("stroke-dasharray", pos)) != std::string::npos) {
    ++lines;
    pos += 10;
  }
  EXPECT_EQ(lines, plan->phases.size());
}

TEST(GanttTest, SvgHandlesEmptyResult) {
  TreeScheduleResult empty;
  const std::string svg = RenderTreeGanttSvg(empty);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace mrs
