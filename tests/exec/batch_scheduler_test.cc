#include "exec/batch_scheduler.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/cost_model.h"
#include "io/schedule_export.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "workload/generator.h"

namespace mrs {
namespace {

WorkloadParams SmallWorkload() {
  WorkloadParams params;
  params.num_joins = 6;
  return params;
}

/// Pre-generates `count` queries from one seeded stream (kept alive so the
/// PlanTree pointers stay valid).
std::vector<GeneratedQuery> GenerateBatch(uint64_t seed, int count,
                                          const WorkloadParams& params) {
  std::vector<GeneratedQuery> queries;
  queries.reserve(static_cast<size_t>(count));
  Rng master(seed);
  for (int i = 0; i < count; ++i) {
    Rng stream = master.Fork();
    auto query = GenerateQuery(params, &stream);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    queries.push_back(std::move(query).value());
  }
  return queries;
}

std::vector<const PlanTree*> PlanPointers(
    const std::vector<GeneratedQuery>& queries) {
  std::vector<const PlanTree*> plans;
  plans.reserve(queries.size());
  for (const auto& q : queries) plans.push_back(q.plan.get());
  return plans;
}

/// The reference single-threaded path: the same pipeline the batch engine
/// runs, executed inline with no pool and no cache.
Result<TreeScheduleResult> ReferenceSchedule(const PlanTree& plan,
                                             const CostParams& params,
                                             const MachineConfig& machine,
                                             double eps,
                                             const TreeScheduleOptions& tree) {
  auto op_tree = OperatorTree::FromPlan(plan);
  if (!op_tree.ok()) return op_tree.status();
  OperatorTree ops = std::move(op_tree).value();
  auto task_tree = TaskTree::FromOperatorTree(&ops);
  if (!task_tree.ok()) return task_tree.status();
  const CostModel model(params, machine.dims, 1);
  auto costs = model.CostAll(ops);
  if (!costs.ok()) return costs.status();
  const OverlapUsageModel usage(eps);
  return TreeSchedule(ops, *task_tree, costs.value(), params, machine, usage,
                      tree);
}

/// A schedule rendered to bytes: the response time plus every phase's
/// clone→site placement (TreeScheduleToCsv lists op, clone, site, work,
/// and times per row), so equality here is makespan- and
/// site-assignment-exact.
std::string Fingerprint(const TreeScheduleResult& result) {
  return std::to_string(result.response_time) + "\n" +
         TreeScheduleToCsv(result);
}

/// Sequential-equivalence property (the batch engine's determinism
/// contract): for 200 random plans, schedules out of the engine at 1, 2,
/// and 8 threads — cache on and off — are byte-identical to the inline
/// single-threaded path. Swept over 5 seeds.
class BatchEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchEquivalenceTest, MatchesSequentialPathAtAllThreadCounts) {
  const uint64_t seed = GetParam();
  const WorkloadParams workload = SmallWorkload();
  const CostParams params;
  MachineConfig machine;
  machine.num_sites = 24;
  const double eps = 0.5;
  TreeScheduleOptions tree;
  tree.granularity = 0.7;

  const int kQueries = 200;
  std::vector<GeneratedQuery> queries =
      GenerateBatch(seed, kQueries, workload);
  std::vector<const PlanTree*> plans = PlanPointers(queries);

  std::vector<std::string> reference;
  reference.reserve(plans.size());
  for (const PlanTree* plan : plans) {
    auto result = ReferenceSchedule(*plan, params, machine, eps, tree);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    reference.push_back(Fingerprint(result.value()));
  }

  struct Config {
    int threads;
    bool cache;
  };
  for (const Config& config : std::vector<Config>{
           {1, true}, {2, true}, {8, true}, {1, false}, {8, false}}) {
    BatchSchedulerOptions options;
    options.num_threads = config.threads;
    options.overlap_eps = eps;
    options.tree = tree;
    options.use_cost_cache = config.cache;
    BatchScheduler engine(params, machine, options);
    BatchOutput output = engine.ScheduleAll(plans);
    ASSERT_EQ(output.items.size(), plans.size());
    for (size_t i = 0; i < output.items.size(); ++i) {
      ASSERT_TRUE(output.items[i].status.ok())
          << "threads=" << config.threads << " cache=" << config.cache
          << " item " << i << ": " << output.items[i].status.ToString();
      EXPECT_EQ(output.items[i].index, static_cast<int>(i));
      EXPECT_EQ(Fingerprint(output.items[i].schedule), reference[i])
          << "threads=" << config.threads << " cache=" << config.cache
          << " item " << i;
    }
    if (config.cache) {
      EXPECT_GT(output.cache_hits + output.cache_misses, 0u);
    } else {
      EXPECT_EQ(output.cache_hits + output.cache_misses, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEquivalenceTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

/// The malleable policy goes through the same engine; spot-check
/// equivalence on a smaller batch.
TEST(BatchSchedulerTest, MalleablePolicyMatchesSequentialPath) {
  const WorkloadParams workload = SmallWorkload();
  const CostParams params;
  MachineConfig machine;
  machine.num_sites = 16;
  TreeScheduleOptions tree;
  tree.policy = ParallelizationPolicy::kMalleable;

  std::vector<GeneratedQuery> queries = GenerateBatch(321, 40, workload);
  std::vector<const PlanTree*> plans = PlanPointers(queries);

  BatchSchedulerOptions options;
  options.num_threads = 4;
  options.tree = tree;
  BatchScheduler engine(params, machine, options);
  BatchOutput output = engine.ScheduleAll(plans);
  for (size_t i = 0; i < plans.size(); ++i) {
    auto reference =
        ReferenceSchedule(*plans[i], params, machine, 0.5, tree);
    ASSERT_TRUE(reference.ok());
    ASSERT_TRUE(output.items[i].status.ok());
    EXPECT_EQ(Fingerprint(output.items[i].schedule),
              Fingerprint(reference.value()));
  }
}

/// ScheduleGenerated derives per-item RNG streams from (seed, index), so
/// the generated batch is identical for every thread count and across
/// repeated runs of one engine (warm cache included).
TEST(BatchSchedulerTest, GeneratedBatchesAreThreadCountInvariant) {
  const WorkloadParams workload = SmallWorkload();
  const CostParams params;
  const MachineConfig machine;

  auto run = [&](int threads) {
    BatchSchedulerOptions options;
    options.num_threads = threads;
    BatchScheduler engine(params, machine, options);
    BatchOutput output = engine.ScheduleGenerated(workload, 9607, 60);
    std::vector<std::string> prints;
    for (const auto& item : output.items) {
      EXPECT_TRUE(item.status.ok()) << item.status.ToString();
      prints.push_back(Fingerprint(item.schedule));
    }
    return prints;
  };
  const std::vector<std::string> one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));

  // Re-running the same batch on one engine (now-warm cache) still
  // reproduces the same bytes: memoization is semantically invisible.
  BatchSchedulerOptions options;
  options.num_threads = 4;
  BatchScheduler engine(params, machine, options);
  BatchOutput first = engine.ScheduleGenerated(workload, 9607, 60);
  BatchOutput second = engine.ScheduleGenerated(workload, 9607, 60);
  ASSERT_EQ(first.items.size(), second.items.size());
  for (size_t i = 0; i < first.items.size(); ++i) {
    EXPECT_EQ(Fingerprint(first.items[i].schedule),
              Fingerprint(second.items[i].schedule));
  }
  // The warm run resolves nearly everything from the cache.
  EXPECT_GT(second.cache_hits, second.cache_misses);
}

/// Repeating one plan across the batch makes every operator signature a
/// repeat: the cache must convert those into hits.
TEST(BatchSchedulerTest, CacheCountsHitsAcrossIdenticalQueries) {
  std::vector<GeneratedQuery> queries = GenerateBatch(7, 1, SmallWorkload());
  std::vector<const PlanTree*> plans(50, queries.front().plan.get());

  const CostParams params;
  const MachineConfig machine;
  BatchSchedulerOptions options;
  options.num_threads = 2;
  BatchScheduler engine(params, machine, options);
  BatchOutput output = engine.ScheduleAll(plans);
  EXPECT_EQ(output.NumOk(), 50);
  EXPECT_GT(output.cache_hits, output.cache_misses)
      << "identical queries should be nearly all hits";
  EXPECT_EQ(engine.cache_counter().lookups(),
            output.cache_hits + output.cache_misses);
  EXPECT_GT(output.TotalResponseTime(), 0.0);
}

TEST(BatchSchedulerTest, NullPlanFailsItsItemOnly) {
  std::vector<GeneratedQuery> queries = GenerateBatch(9, 2, SmallWorkload());
  std::vector<const PlanTree*> plans = {queries[0].plan.get(), nullptr,
                                        queries[1].plan.get()};
  BatchScheduler engine(CostParams{}, MachineConfig{}, {});
  BatchOutput output = engine.ScheduleAll(plans);
  ASSERT_EQ(output.items.size(), 3u);
  EXPECT_TRUE(output.items[0].status.ok());
  EXPECT_EQ(output.items[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(output.items[2].status.ok());
  EXPECT_EQ(output.NumOk(), 2);
}

TEST(BatchSchedulerTest, EmptyBatch) {
  BatchScheduler engine(CostParams{}, MachineConfig{}, {});
  EXPECT_TRUE(engine.ScheduleAll({}).items.empty());
  EXPECT_TRUE(
      engine.ScheduleGenerated(SmallWorkload(), 1, 0).items.empty());
}

/// A cache built for one context is rejected by a TreeSchedule call with a
/// different one (the compatibility guard of TreeScheduleOptions::cache).
TEST(BatchSchedulerTest, IncompatibleCacheIsRejected) {
  std::vector<GeneratedQuery> queries = GenerateBatch(3, 1, SmallWorkload());
  auto op_tree = OperatorTree::FromPlan(*queries[0].plan);
  ASSERT_TRUE(op_tree.ok());
  OperatorTree ops = std::move(op_tree).value();
  auto task_tree = TaskTree::FromOperatorTree(&ops);
  ASSERT_TRUE(task_tree.ok());
  const CostParams params;
  MachineConfig machine;
  const CostModel model(params, machine.dims);
  auto costs = model.CostAll(ops);
  ASSERT_TRUE(costs.ok());
  const OverlapUsageModel usage(0.5);

  ParallelizeCache cache(params, 0.5, /*granularity=*/0.7,
                         /*num_sites=*/machine.num_sites + 1);
  TreeScheduleOptions options;
  options.granularity = 0.7;
  options.cache = &cache;
  auto result = TreeSchedule(ops, *task_tree, costs.value(), params, machine,
                             usage, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mrs
