#include "exec/fluid_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "core/operator_schedule.h"
#include "core/tree_schedule.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::MakeOp;
using testing_util::MakeUnitOp;
using testing_util::PlanFixture;

TEST(FluidSimulatorTest, EmptyScheduleTakesZeroTime) {
  OverlapUsageModel usage(0.5);
  FluidSimulator sim(usage);
  Schedule s(3, 2);
  auto result = sim.SimulatePhase(s);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->makespan, 0.0);
}

TEST(FluidSimulatorTest, SingleCloneRunsAtItsSequentialTime) {
  OverlapUsageModel usage(0.4);
  FluidSimulator sim(usage);
  Schedule s(2, 2);
  auto op = MakeUnitOp(0, {6.0, 2.0}, usage);
  ASSERT_TRUE(s.Place(op, 0, 0).ok());
  auto result = sim.SimulatePhase(s);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->makespan, usage.SequentialTime({6.0, 2.0}), 1e-9);
  EXPECT_NEAR(result->clone_finish[0], result->makespan, 1e-9);
}

TEST(FluidSimulatorTest, OptimalStretchRealizesEquation2) {
  // The paper's squeeze example: clones (22,[10,15]) and (10,[10,5]) share
  // a site and both finish at 22.
  OverlapUsageModel usage(0.3);
  FluidSimulator sim(usage, SharingPolicy::kOptimalStretch);
  Schedule s(1, 2);
  ASSERT_TRUE(s.Place(MakeUnitOp(0, {10.0, 15.0}, usage), 0, 0).ok());
  ASSERT_TRUE(s.Place(MakeUnitOp(1, {10.0, 5.0}, usage), 0, 0).ok());
  auto result = sim.SimulatePhase(s);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->makespan, 22.0, 1e-9);
  EXPECT_NEAR(result->makespan, s.Makespan(), 1e-9);
}

TEST(FluidSimulatorTest, OptimalStretchMatchesAnalyticOnRandomSchedules) {
  OverlapUsageModel usage(0.5);
  FluidSimulator sim(usage);
  std::vector<ParallelizedOp> ops;
  for (int i = 0; i < 9; ++i) {
    ops.push_back(MakeOp(
        i,
        {{1.0 + i, 9.0 - i, 2.0}, {0.5 * i, 3.0, 1.0 + i}},
        usage));
  }
  auto schedule = OperatorSchedule(ops, 4, 3);
  ASSERT_TRUE(schedule.ok());
  auto result = sim.SimulatePhase(*schedule);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->makespan, schedule->Makespan(), 1e-6);
  // Per-site agreement with eq. (2).
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(result->sites[static_cast<size_t>(j)].finish,
                schedule->SiteTime(j), 1e-6);
  }
}

TEST(FluidSimulatorTest, BusyTimeEqualsWorkVectors) {
  OverlapUsageModel usage(0.5);
  FluidSimulator sim(usage);
  Schedule s(1, 2);
  ASSERT_TRUE(s.Place(MakeUnitOp(0, {4.0, 6.0}, usage), 0, 0).ok());
  ASSERT_TRUE(s.Place(MakeUnitOp(1, {3.0, 1.0}, usage), 0, 0).ok());
  auto result = sim.SimulatePhase(s);
  ASSERT_TRUE(result.ok());
  // Fluid execution conserves work: busy time = sum of vectors.
  EXPECT_NEAR(result->sites[0].busy[0], 7.0, 1e-9);
  EXPECT_NEAR(result->sites[0].busy[1], 7.0, 1e-9);
}

TEST(FluidSimulatorTest, UniformSlowdownNeverFasterThanOptimal) {
  OverlapUsageModel usage(0.3);
  FluidSimulator optimal(usage, SharingPolicy::kOptimalStretch);
  FluidSimulator uniform(usage, SharingPolicy::kUniformSlowdown);
  std::vector<ParallelizedOp> ops;
  for (int i = 0; i < 6; ++i) {
    ops.push_back(
        MakeUnitOp(i, {2.0 + i, 8.0 - i, 1.0 + 0.5 * i}, usage));
  }
  auto schedule = OperatorSchedule(ops, 2, 3);
  ASSERT_TRUE(schedule.ok());
  auto fast = optimal.SimulatePhase(*schedule);
  auto slow = uniform.SimulatePhase(*schedule);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_GE(slow->makespan + 1e-9, fast->makespan);
}

TEST(FluidSimulatorTest, UniformSlowdownAloneCloneUnaffected) {
  OverlapUsageModel usage(0.5);
  FluidSimulator sim(usage, SharingPolicy::kUniformSlowdown);
  Schedule s(1, 2);
  auto op = MakeUnitOp(0, {5.0, 3.0}, usage);
  ASSERT_TRUE(s.Place(op, 0, 0).ok());
  auto result = sim.SimulatePhase(s);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->makespan, op.t_par, 1e-9);
}

TEST(FluidSimulatorTest, UniformSlowdownConservesWork) {
  OverlapUsageModel usage(0.2);
  FluidSimulator sim(usage, SharingPolicy::kUniformSlowdown);
  Schedule s(1, 2);
  ASSERT_TRUE(s.Place(MakeUnitOp(0, {4.0, 6.0}, usage), 0, 0).ok());
  ASSERT_TRUE(s.Place(MakeUnitOp(1, {5.0, 2.0}, usage), 0, 0).ok());
  auto result = sim.SimulatePhase(s);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->sites[0].busy[0], 9.0, 1e-6);
  EXPECT_NEAR(result->sites[0].busy[1], 8.0, 1e-6);
}

TEST(FluidSimulatorTest, FullPlanSimulationMatchesTreeSchedule) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 12;
  auto plan = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage);
  ASSERT_TRUE(plan.ok());
  FluidSimulator sim(usage);
  auto result = sim.Simulate(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->response_time, plan->response_time, 1e-6);
  EXPECT_EQ(result->phases.size(), plan->phases.size());
  // Utilization is a fraction of capacity.
  for (size_t r = 0; r < result->average_utilization.dim(); ++r) {
    EXPECT_GE(result->average_utilization[r], 0.0);
    EXPECT_LE(result->average_utilization[r], 1.0 + 1e-9);
  }
}

TEST(FluidSimulatorTest, DisjointResidentQueriesKeepTheirOwnMakespans) {
  // Two queries resident in the same simulated phase, but on disjoint
  // sites: interleaving their completions must reproduce each query's
  // standalone makespan and per-clone finish times exactly.
  OverlapUsageModel usage(0.4);
  FluidSimulator sim(usage, SharingPolicy::kOptimalStretch);

  // Query A occupies sites 0 and 1, query B sites 2 and 3.
  const std::vector<std::pair<ParallelizedOp, int>> a_clones = {
      {MakeUnitOp(0, {6.0, 2.0}, usage), 0},
      {MakeUnitOp(1, {3.0, 5.0}, usage), 0},
      {MakeUnitOp(2, {4.0, 4.0}, usage), 1},
  };
  const std::vector<std::pair<ParallelizedOp, int>> b_clones = {
      {MakeUnitOp(3, {1.0, 2.0}, usage), 2},
      {MakeUnitOp(4, {2.0, 1.5}, usage), 3},
      {MakeUnitOp(5, {0.5, 0.5}, usage), 3},
  };

  Schedule only_a(4, 2);
  Schedule only_b(4, 2);
  Schedule both(4, 2);
  for (const auto& [op, site] : a_clones) {
    ASSERT_TRUE(only_a.Place(op, 0, site).ok());
    ASSERT_TRUE(both.Place(op, 0, site).ok());
  }
  for (const auto& [op, site] : b_clones) {
    ASSERT_TRUE(only_b.Place(op, 0, site).ok());
    ASSERT_TRUE(both.Place(op, 0, site).ok());
  }

  auto sim_a = sim.SimulatePhase(only_a);
  auto sim_b = sim.SimulatePhase(only_b);
  auto sim_both = sim.SimulatePhase(both);
  ASSERT_TRUE(sim_a.ok());
  ASSERT_TRUE(sim_b.ok());
  ASSERT_TRUE(sim_both.ok());

  // B is strictly shorter than A, so completions genuinely interleave.
  ASSERT_LT(sim_b->makespan, sim_a->makespan);
  EXPECT_DOUBLE_EQ(sim_both->makespan,
                   std::max(sim_a->makespan, sim_b->makespan));
  ASSERT_EQ(sim_both->clone_finish.size(),
            sim_a->clone_finish.size() + sim_b->clone_finish.size());
  for (size_t i = 0; i < sim_a->clone_finish.size(); ++i) {
    EXPECT_DOUBLE_EQ(sim_both->clone_finish[i], sim_a->clone_finish[i]);
  }
  for (size_t i = 0; i < sim_b->clone_finish.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        sim_both->clone_finish[sim_a->clone_finish.size() + i],
        sim_b->clone_finish[i]);
  }
}

// Regression: an empty plan used to fabricate a dim-1 zero-phase result
// (the machine's true dimensionality is unknowable without a phase). It
// is now rejected outright.
TEST(FluidSimulatorTest, RejectsPlanWithNoPhases) {
  OverlapUsageModel usage(0.5);
  FluidSimulator sim(usage);
  TreeScheduleResult empty_plan;
  auto result = sim.Simulate(empty_plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FluidSimulatorTest, RejectsInconsistentCloneTimes) {
  OverlapUsageModel usage(0.5);
  FluidSimulator sim(usage);
  Schedule s(1, 2);
  ParallelizedOp bogus;
  bogus.op_id = 0;
  bogus.degree = 1;
  bogus.clones = {WorkVector({10.0, 10.0})};
  bogus.t_seq = {1.0};  // below the max-component floor
  bogus.t_par = 1.0;
  ASSERT_TRUE(s.Place(bogus, 0, 0).ok());
  EXPECT_FALSE(sim.SimulatePhase(s).ok());
}

}  // namespace
}  // namespace mrs
