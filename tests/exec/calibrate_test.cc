// Tests for the calibration harness (exec/calibrate.h): schedules replay
// on the execute backend, per-site measurements aggregate against the
// eq. (2)/(3) predictions, the least-squares scale fit is sane (and
// recovers a planted linear meter exactly), fitting reduces the mean
// relative error, and the versioned JSON report carries every field the
// tooling (scripts/compare_bench.py) reads.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/list_schedule.h"
#include "core/tree_schedule.h"
#include "exec/calibrate.h"
#include "exec/exec_backend.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::PipelinedChainFixture;
using testing_util::PlanFixture;

ExecuteOptions DeterministicExec() {
  ExecuteOptions exec;
  exec.meter = ExecMeter::kDeterministic;
  exec.threads = 2;
  return exec;
}

struct CalibrationFixture {
  PlanFixture fx;
  MachineConfig machine;
  OverlapUsageModel usage{0.5};
  TreeScheduleResult tree;
  ListScheduleResult list;
  std::vector<ExecOpSpec> specs;
};

CalibrationFixture MakeCalibrationFixture(PlanFixture base) {
  CalibrationFixture c;
  c.fx = std::move(base);
  auto tree = TreeSchedule(c.fx.op_tree, c.fx.task_tree, c.fx.costs,
                           CostParams{}, c.machine, c.usage);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  c.tree = std::move(tree).value();
  auto list = ListSchedule(c.fx.op_tree, c.fx.task_tree, c.fx.costs,
                           CostParams{}, c.machine, c.usage);
  EXPECT_TRUE(list.ok()) << list.status().ToString();
  c.list = std::move(list).value();
  c.specs = ExecOpSpecsFromTree(c.fx.op_tree);
  return c;
}

TEST(CalibratorTest, AccumulatesPlansAndCloneSamples) {
  CalibrationFixture c = MakeCalibrationFixture(BushyFourWayFixture());
  Calibrator calibrator(c.machine.dims, c.usage, DeterministicExec());
  EXPECT_EQ(calibrator.num_plans(), 0);
  ASSERT_TRUE(calibrator.AddTreePlan("bushy", c.tree, c.specs).ok());
  ASSERT_TRUE(calibrator.AddSchedule("bushy-list", c.list.schedule,
                                     c.specs).ok());
  EXPECT_EQ(calibrator.num_plans(), 2);
  int placed = 0;
  for (const PhaseSchedule& phase : c.tree.phases) {
    placed += phase.schedule.num_placements();
  }
  placed += c.list.schedule.num_placements();
  EXPECT_EQ(calibrator.num_clone_samples(), placed);
}

TEST(CalibratorTest, RejectsDimensionMismatch) {
  CalibrationFixture c = MakeCalibrationFixture(BushyFourWayFixture());
  Calibrator calibrator(c.machine.dims + 2, c.usage, DeterministicExec());
  EXPECT_FALSE(calibrator.AddTreePlan("bushy", c.tree, c.specs).ok());
}

TEST(CalibratorTest, FitScaleIsNonNegativeAndEmptyFitIsZero) {
  CalibrationFixture c = MakeCalibrationFixture(BushyFourWayFixture());
  Calibrator empty(c.machine.dims, c.usage, DeterministicExec());
  const std::vector<double> zero = empty.FitScale();
  ASSERT_EQ(static_cast<int>(zero.size()), c.machine.dims);
  for (double s : zero) EXPECT_EQ(s, 0.0);

  Calibrator calibrator(c.machine.dims, c.usage, DeterministicExec());
  ASSERT_TRUE(calibrator.AddTreePlan("bushy", c.tree, c.specs).ok());
  const std::vector<double> scale = calibrator.FitScale();
  ASSERT_EQ(static_cast<int>(scale.size()), c.machine.dims);
  for (double s : scale) EXPECT_GE(s, 0.0);
}

/// With the deterministic meter the "measurement" is a known function of
/// row counts, far from the model's milliseconds — exactly the situation
/// calibration exists for. The fitted per-dimension scale must cut the
/// mean relative error, and by a lot.
TEST(CalibratorTest, FittingReducesMeanRelativeError) {
  CalibrationFixture c = MakeCalibrationFixture(BushyFourWayFixture());
  Calibrator calibrator(c.machine.dims, c.usage, DeterministicExec());
  ASSERT_TRUE(calibrator.AddTreePlan("bushy", c.tree, c.specs).ok());
  CalibrationFixture chain = MakeCalibrationFixture(PipelinedChainFixture(4));
  ASSERT_TRUE(calibrator.AddTreePlan("chain", chain.tree, chain.specs).ok());
  ASSERT_TRUE(
      calibrator.AddSchedule("bushy-list", c.list.schedule, c.specs).ok());

  const double unfitted = calibrator.MeanRelativeError(/*fitted=*/false);
  const double fitted = calibrator.MeanRelativeError(/*fitted=*/true);
  EXPECT_GT(unfitted, 0.0);
  EXPECT_LT(fitted, unfitted);
}

/// The deterministic meter is linear in executed rows and the
/// fraction-scaled work vectors are too, so a 3-parameter per-dimension
/// scale — one shared across all operator kinds — should land the site
/// predictions in the right ballpark (it cannot be exact: different
/// kinds have different meter-to-work ratios).
TEST(CalibratorTest, DeterministicMeterFitsWithinCoarseTolerance) {
  CalibrationFixture c = MakeCalibrationFixture(BushyFourWayFixture());
  Calibrator calibrator(c.machine.dims, c.usage, DeterministicExec());
  ASSERT_TRUE(calibrator.AddTreePlan("bushy", c.tree, c.specs).ok());
  const double fitted = calibrator.MeanRelativeError(/*fitted=*/true);
  EXPECT_LT(fitted, 0.75)
      << "a linear meter over linear features should fit coarsely";
}

TEST(CalibratorTest, FittedOptionsScaleTheCostModel) {
  CalibrationFixture c = MakeCalibrationFixture(BushyFourWayFixture());
  Calibrator calibrator(c.machine.dims, c.usage, DeterministicExec());
  ASSERT_TRUE(calibrator.AddTreePlan("bushy", c.tree, c.specs).ok());
  const CostModelOptions options = calibrator.FittedOptions();
  EXPECT_TRUE(options.fitted);
  ASSERT_EQ(static_cast<int>(options.scale.size()), c.machine.dims);

  const CostModel analytic(CostParams{}, c.machine.dims);
  const CostModel fitted(CostParams{}, c.machine.dims, /*num_disks=*/1,
                         options);
  EXPECT_TRUE(fitted.options().fitted);
  for (const PhysicalOp& op : c.fx.op_tree.ops()) {
    auto a = analytic.Cost(op);
    auto f = fitted.Cost(op);
    ASSERT_TRUE(a.ok() && f.ok());
    for (size_t d = 0; d < a->processing.dim(); ++d) {
      EXPECT_DOUBLE_EQ(f->processing[d],
                       a->processing[d] * options.scale[d])
          << "op " << op.id << " dim " << d;
    }
  }
}

TEST(CalibratorTest, ReportJsonCarriesTheSchemaAndIsDeterministic) {
  CalibrationFixture c = MakeCalibrationFixture(BushyFourWayFixture());
  Calibrator calibrator(c.machine.dims, c.usage, DeterministicExec());
  ASSERT_TRUE(calibrator.AddTreePlan("bushy", c.tree, c.specs).ok());
  ASSERT_TRUE(
      calibrator.AddSchedule("bushy-list", c.list.schedule, c.specs).ok());
  const std::string report = calibrator.ReportJson();
  for (const char* field :
       {"\"calibration_report_version\": 1", "\"meter\": \"deterministic\"",
        "\"data_seed\"", "\"skew\"", "\"max_rows_per_op\"", "\"eps\"",
        "\"dims\"", "\"plans\": 2", "\"clone_samples\"", "\"fitted_scale\"",
        "\"mean_rel_error_unfitted\"", "\"mean_rel_error_fitted\"",
        "\"per_plan\"", "\"label\": \"bushy\"", "\"label\": \"bushy-list\"",
        "\"predicted_makespan_ms\"", "\"measured_makespan\"",
        "\"fitted_makespan\"", "\"sites\"", "\"predicted_ms\""}) {
    EXPECT_NE(report.find(field), std::string::npos)
        << "report missing " << field << "\n" << report;
  }

  // Deterministic meter => byte-identical reports across replays.
  Calibrator again(c.machine.dims, c.usage, DeterministicExec());
  ASSERT_TRUE(again.AddTreePlan("bushy", c.tree, c.specs).ok());
  ASSERT_TRUE(
      again.AddSchedule("bushy-list", c.list.schedule, c.specs).ok());
  EXPECT_EQ(report, again.ReportJson());
}

/// The honest meter still produces a structurally valid report; no value
/// assertions (CPU time is noisy on CI), just plumbing.
TEST(CalibratorTest, ThreadCpuMeterProducesAReport) {
  CalibrationFixture c = MakeCalibrationFixture(BushyFourWayFixture());
  ExecuteOptions exec;
  exec.meter = ExecMeter::kThreadCpu;
  exec.threads = 2;
  Calibrator calibrator(c.machine.dims, c.usage, exec);
  ASSERT_TRUE(calibrator.AddTreePlan("bushy", c.tree, c.specs).ok());
  const std::string report = calibrator.ReportJson();
  EXPECT_NE(report.find("\"meter\": \"thread_cpu\""), std::string::npos);
  EXPECT_GE(calibrator.MeanRelativeError(/*fitted=*/false), 0.0);
  EXPECT_GE(calibrator.MeanRelativeError(/*fitted=*/true), 0.0);
}

}  // namespace
}  // namespace mrs
