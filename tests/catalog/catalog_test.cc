#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "catalog/relation.h"

namespace mrs {
namespace {

Relation MakeRelation(const std::string& name, int64_t tuples) {
  Relation r;
  r.name = name;
  r.num_tuples = tuples;
  return r;
}

TEST(RelationTest, PageMath) {
  Relation r = MakeRelation("R", 100);
  EXPECT_EQ(r.NumPages(), 3);  // ceil(100/40)
  EXPECT_EQ(r.NumBytes(), 100 * 128);
  r.num_tuples = 40;
  EXPECT_EQ(r.NumPages(), 1);
  r.num_tuples = 41;
  EXPECT_EQ(r.NumPages(), 2);
  r.num_tuples = 0;
  EXPECT_EQ(r.NumPages(), 0);
}

TEST(RelationTest, CustomLayout) {
  Relation r = MakeRelation("R", 10);
  r.layout.tuple_bytes = 64;
  r.layout.tuples_per_page = 5;
  EXPECT_EQ(r.NumPages(), 2);
  EXPECT_EQ(r.NumBytes(), 640);
  EXPECT_EQ(r.layout.PageBytes(), 320);
}

TEST(KeyJoinTest, ResultIsMaxOfOperands) {
  EXPECT_EQ(KeyJoinResultTuples(1000, 500), 1000);
  EXPECT_EQ(KeyJoinResultTuples(500, 1000), 1000);
  EXPECT_EQ(KeyJoinResultTuples(7, 7), 7);
}

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  auto id0 = catalog.AddRelation(MakeRelation("orders", 1000));
  auto id1 = catalog.AddRelation(MakeRelation("lineitem", 5000));
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(id0.value(), 0);
  EXPECT_EQ(id1.value(), 1);
  EXPECT_EQ(catalog.num_relations(), 2);
  EXPECT_EQ(catalog.GetRelation(1)->name, "lineitem");
  EXPECT_EQ(catalog.GetRelationByName("orders")->num_tuples, 1000);
  EXPECT_EQ(catalog.TotalTuples(), 6000);
}

TEST(CatalogTest, RejectsDuplicateName) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation(MakeRelation("r", 10)).ok());
  EXPECT_EQ(catalog.AddRelation(MakeRelation("r", 20)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, RejectsMalformedRelations) {
  Catalog catalog;
  EXPECT_FALSE(catalog.AddRelation(MakeRelation("", 10)).ok());
  EXPECT_FALSE(catalog.AddRelation(MakeRelation("neg", -1)).ok());
  Relation bad_layout = MakeRelation("bad", 10);
  bad_layout.layout.tuples_per_page = 0;
  EXPECT_FALSE(catalog.AddRelation(bad_layout).ok());
}

TEST(CatalogTest, LookupMissing) {
  Catalog catalog;
  EXPECT_EQ(catalog.GetRelation(0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.GetRelation(-1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.GetRelationByName("nope").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace mrs
