#include "workload/generator.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace mrs {
namespace {

TEST(GeneratorTest, ProducesTreeQueryOfRequestedSize) {
  WorkloadParams params;
  params.num_joins = 12;
  Rng rng(1);
  auto q = GenerateQuery(params, &rng);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->graph->num_relations(), 13);
  EXPECT_EQ(q->graph->num_joins(), 12);
  EXPECT_TRUE(q->graph->IsTree());
  EXPECT_TRUE(q->plan->finalized());
  EXPECT_EQ(q->plan->num_joins(), 12);
  EXPECT_EQ(q->plan->num_leaves(), 13);
  EXPECT_EQ(q->catalog->num_relations(), 13);
}

TEST(GeneratorTest, RelationSizesInRange) {
  WorkloadParams params;
  params.num_joins = 30;
  params.min_tuples = 1000;
  params.max_tuples = 100000;
  Rng rng(2);
  auto q = GenerateQuery(params, &rng);
  ASSERT_TRUE(q.ok());
  for (const auto& r : q->catalog->relations()) {
    EXPECT_GE(r.num_tuples, 1000);
    EXPECT_LE(r.num_tuples, 100000);
  }
}

TEST(GeneratorTest, UniformSizingAlsoInRange) {
  WorkloadParams params;
  params.num_joins = 20;
  params.sizing = RelationSizing::kUniform;
  Rng rng(3);
  auto q = GenerateQuery(params, &rng);
  ASSERT_TRUE(q.ok());
  for (const auto& r : q->catalog->relations()) {
    EXPECT_GE(r.num_tuples, params.min_tuples);
    EXPECT_LE(r.num_tuples, params.max_tuples);
  }
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  WorkloadParams params;
  params.num_joins = 15;
  Rng rng_a(42);
  Rng rng_b(42);
  auto a = GenerateQuery(params, &rng_a);
  auto b = GenerateQuery(params, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->plan->ToString(), b->plan->ToString());
  EXPECT_EQ(a->graph->ToString(), b->graph->ToString());
  for (int i = 0; i < a->catalog->num_relations(); ++i) {
    EXPECT_EQ(a->catalog->GetRelation(i)->num_tuples,
              b->catalog->GetRelation(i)->num_tuples);
  }
}

TEST(GeneratorTest, DifferentSeedsDifferentPlans) {
  WorkloadParams params;
  params.num_joins = 15;
  Rng rng_a(1);
  Rng rng_b(2);
  auto a = GenerateQuery(params, &rng_a);
  auto b = GenerateQuery(params, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->plan->ToString(), b->plan->ToString());
}

TEST(GeneratorTest, BuildSideIsSmallerUnderDefaultRule) {
  WorkloadParams params;
  params.num_joins = 10;
  Rng rng(5);
  auto q = GenerateQuery(params, &rng);
  ASSERT_TRUE(q.ok());
  for (int i = 0; i < q->plan->num_nodes(); ++i) {
    const PlanNode& node = q->plan->node(i);
    if (node.is_leaf) continue;
    const int64_t outer = q->plan->node(node.outer_child).output.num_tuples;
    const int64_t inner = q->plan->node(node.inner_child).output.num_tuples;
    EXPECT_LE(inner, outer);
  }
}

TEST(GeneratorTest, KeyJoinSizingPropagates) {
  WorkloadParams params;
  params.num_joins = 8;
  Rng rng(6);
  auto q = GenerateQuery(params, &rng);
  ASSERT_TRUE(q.ok());
  for (int i = 0; i < q->plan->num_nodes(); ++i) {
    const PlanNode& node = q->plan->node(i);
    if (node.is_leaf) continue;
    const int64_t outer = q->plan->node(node.outer_child).output.num_tuples;
    const int64_t inner = q->plan->node(node.inner_child).output.num_tuples;
    EXPECT_EQ(node.output.num_tuples, std::max(outer, inner));
  }
}

TEST(GeneratorTest, ZeroJoinQuery) {
  WorkloadParams params;
  params.num_joins = 0;
  Rng rng(7);
  auto q = GenerateQuery(params, &rng);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->plan->num_joins(), 0);
  EXPECT_EQ(q->plan->num_leaves(), 1);
}

TEST(GeneratorTest, RandomBuildSideStillValidPlan) {
  WorkloadParams params;
  params.num_joins = 10;
  params.build_side = BuildSideRule::kRandom;
  Rng rng(8);
  auto q = GenerateQuery(params, &rng);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->plan->finalized());
  EXPECT_EQ(q->plan->num_joins(), 10);
}

TEST(GeneratorTest, RejectsInvalidParams) {
  Rng rng(9);
  WorkloadParams bad;
  bad.num_joins = -1;
  EXPECT_FALSE(GenerateQuery(bad, &rng).ok());
  bad = WorkloadParams{};
  bad.min_tuples = 0;
  EXPECT_FALSE(GenerateQuery(bad, &rng).ok());
  bad = WorkloadParams{};
  bad.max_tuples = bad.min_tuples - 1;
  EXPECT_FALSE(GenerateQuery(bad, &rng).ok());
}

/// Plan shapes vary across seeds: over many draws we should see both
/// shallow and deep plans (a fixed generator bug would collapse this).
TEST(GeneratorTest, PlanShapeDiversity) {
  WorkloadParams params;
  params.num_joins = 12;
  int min_height = 1000;
  int max_height = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    auto q = GenerateQuery(params, &rng);
    ASSERT_TRUE(q.ok());
    const int h = q->plan->Height();
    min_height = std::min(min_height, h);
    max_height = std::max(max_height, h);
  }
  EXPECT_LT(min_height, max_height);
}

}  // namespace
}  // namespace mrs
