#include "workload/experiment.h"

#include <gtest/gtest.h>

namespace mrs {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.queries_per_point = 3;
  config.workload.num_joins = 6;
  config.machine.num_sites = 10;
  config.granularity = 0.7;
  config.overlap = 0.5;
  return config;
}

TEST(ExperimentTest, PrepareQueryDerivesConsistentArtifacts) {
  ExperimentConfig config = SmallConfig();
  auto artifacts = PrepareQuery(config, 0);
  ASSERT_TRUE(artifacts.ok());
  EXPECT_EQ(artifacts->op_tree.num_ops(),
            3 * config.workload.num_joins + 1);
  EXPECT_EQ(static_cast<int>(artifacts->costs.size()),
            artifacts->op_tree.num_ops());
  EXPECT_GE(artifacts->task_tree.num_tasks(), 1);
}

TEST(ExperimentTest, PrepareQueryDeterministicPerIndex) {
  ExperimentConfig config = SmallConfig();
  auto a = PrepareQuery(config, 1);
  auto b = PrepareQuery(config, 1);
  auto c = PrepareQuery(config, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->query.plan->ToString(), b->query.plan->ToString());
  EXPECT_NE(a->query.plan->ToString(), c->query.plan->ToString());
}

TEST(ExperimentTest, AllSchedulersProducePositiveResponse) {
  ExperimentConfig config = SmallConfig();
  for (SchedulerKind kind :
       {SchedulerKind::kTreeSchedule, SchedulerKind::kTreeScheduleMalleable,
        SchedulerKind::kSynchronous, SchedulerKind::kOptBound}) {
    auto artifacts = PrepareQuery(config, 0);
    ASSERT_TRUE(artifacts.ok());
    auto response = RunScheduler(kind, &artifacts.value(), config);
    ASSERT_TRUE(response.ok()) << SchedulerKindToString(kind) << ": "
                               << response.status().ToString();
    EXPECT_GT(response.value(), 0.0) << SchedulerKindToString(kind);
  }
}

TEST(ExperimentTest, OptBoundIsBelowTreeSchedule) {
  ExperimentConfig config = SmallConfig();
  for (int q = 0; q < 5; ++q) {
    auto artifacts = PrepareQuery(config, q);
    ASSERT_TRUE(artifacts.ok());
    auto tree =
        RunScheduler(SchedulerKind::kTreeSchedule, &artifacts.value(), config);
    auto bound =
        RunScheduler(SchedulerKind::kOptBound, &artifacts.value(), config);
    ASSERT_TRUE(tree.ok());
    ASSERT_TRUE(bound.ok());
    EXPECT_LE(bound.value(), tree.value() + 1e-6);
  }
}

TEST(ExperimentTest, MeasureAverageResponseAggregates) {
  ExperimentConfig config = SmallConfig();
  auto stat = MeasureAverageResponse(SchedulerKind::kTreeSchedule, config);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->count(),
            static_cast<size_t>(config.queries_per_point));
  EXPECT_GT(stat->mean(), 0.0);
  EXPECT_LE(stat->min(), stat->mean());
  EXPECT_GE(stat->max(), stat->mean());
}

TEST(ExperimentTest, MeasureSchedulersSharesQuerySet) {
  ExperimentConfig config = SmallConfig();
  auto stats = MeasureSchedulers(
      {SchedulerKind::kTreeSchedule, SchedulerKind::kOptBound}, config);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), 2u);
  // The lower bound's average is below the scheduler's average on the
  // same queries.
  EXPECT_LE((*stats)[1].mean(), (*stats)[0].mean() + 1e-6);
}

TEST(ExperimentTest, MeasurementsDeterministic) {
  ExperimentConfig config = SmallConfig();
  auto a = MeasureAverageResponse(SchedulerKind::kSynchronous, config);
  auto b = MeasureAverageResponse(SchedulerKind::kSynchronous, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->mean(), b->mean());
}

TEST(ExperimentTest, SchedulerNames) {
  EXPECT_EQ(SchedulerKindToString(SchedulerKind::kTreeSchedule),
            "TREESCHEDULE");
  EXPECT_EQ(SchedulerKindToString(SchedulerKind::kSynchronous),
            "SYNCHRONOUS");
  EXPECT_EQ(SchedulerKindToString(SchedulerKind::kOptBound), "OPTBOUND");
  EXPECT_EQ(SchedulerKindToString(SchedulerKind::kTreeScheduleMalleable),
            "TREESCHEDULE-M");
}

}  // namespace
}  // namespace mrs
