#include "workload/skew.h"

#include <gtest/gtest.h>

#include "core/tree_schedule.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::MakeOp;
using testing_util::PlanFixture;

ParallelizedOp EvenOp(int id, int degree, const OverlapUsageModel& usage) {
  std::vector<WorkVector> clones(static_cast<size_t>(degree),
                                 WorkVector({12.0, 6.0, 3.0}));
  return MakeOp(id, std::move(clones), usage);
}

TEST(ApplySkewTest, ThetaZeroIsIdentity) {
  OverlapUsageModel usage(0.5);
  Rng rng(1);
  auto op = EvenOp(0, 4, usage);
  SkewParams params;
  params.theta = 0.0;
  auto skewed = ApplySkew(op, params, usage, &rng);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(skewed.clones[static_cast<size_t>(k)],
              op.clones[static_cast<size_t>(k)]);
  }
  EXPECT_DOUBLE_EQ(skewed.t_par, op.t_par);
}

TEST(ApplySkewTest, SingleCloneUnaffected) {
  OverlapUsageModel usage(0.5);
  Rng rng(1);
  auto op = EvenOp(0, 1, usage);
  SkewParams params;
  params.theta = 1.5;
  auto skewed = ApplySkew(op, params, usage, &rng);
  EXPECT_EQ(skewed.clones[0], op.clones[0]);
}

TEST(ApplySkewTest, PreservesTotalWork) {
  OverlapUsageModel usage(0.5);
  Rng rng(9);
  auto op = EvenOp(0, 6, usage);
  for (double theta : {0.3, 0.8, 1.5}) {
    SkewParams params;
    params.theta = theta;
    auto skewed = ApplySkew(op, params, usage, &rng);
    const WorkVector before = op.TotalWork();
    const WorkVector after = skewed.TotalWork();
    for (size_t i = 0; i < before.dim(); ++i) {
      EXPECT_NEAR(after[i], before[i], 1e-9);
    }
  }
}

TEST(ApplySkewTest, IncreasesTParForPositiveTheta) {
  OverlapUsageModel usage(0.5);
  Rng rng(3);
  auto op = EvenOp(0, 8, usage);
  SkewParams params;
  params.theta = 1.0;
  auto skewed = ApplySkew(op, params, usage, &rng);
  // One clone got more than its even share, so the slowest clone slowed.
  EXPECT_GT(skewed.t_par, op.t_par);
  // Clone times stay consistent with the usage model.
  for (int k = 0; k < op.degree; ++k) {
    EXPECT_NEAR(
        skewed.t_seq[static_cast<size_t>(k)],
        usage.SequentialTime(skewed.clones[static_cast<size_t>(k)]), 1e-12);
  }
}

TEST(ApplySkewTest, MoreThetaMoreImbalance) {
  OverlapUsageModel usage(0.5);
  auto op = EvenOp(0, 8, usage);
  double prev = op.t_par;
  for (double theta : {0.25, 0.5, 1.0, 2.0}) {
    SkewParams params;
    params.theta = theta;
    Rng rng(42);  // same rank assignment across thetas
    auto skewed = ApplySkew(op, params, usage, &rng);
    EXPECT_GT(skewed.t_par, prev);
    prev = skewed.t_par;
  }
}

TEST(SkewedResponseTest, ZeroThetaMatchesAnalytic) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 10;
  auto plan = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage);
  ASSERT_TRUE(plan.ok());
  SkewParams params;
  params.theta = 0.0;
  auto skewed = SkewedResponseTime(*plan, params, usage);
  ASSERT_TRUE(skewed.ok());
  EXPECT_NEAR(skewed.value(), plan->response_time, 1e-9);
}

TEST(SkewedResponseTest, SkewNeverHelpsMuchAndUsuallyHurts) {
  PlanFixture fx = BushyFourWayFixture({60000, 30000, 90000, 20000});
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 16;
  auto plan = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage);
  ASSERT_TRUE(plan.ok());
  int hurt = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    SkewParams params;
    params.theta = 1.0;
    params.seed = seed;
    auto skewed = SkewedResponseTime(*plan, params, usage);
    ASSERT_TRUE(skewed.ok());
    // Skew moves work between co-scheduled clones; it can occasionally
    // cancel out, but it cannot beat the balanced schedule by much.
    EXPECT_GE(skewed.value(), plan->response_time * 0.95);
    if (skewed.value() > plan->response_time * 1.01) ++hurt;
  }
  EXPECT_GE(hurt, 7);
}

TEST(SkewedResponseTest, DeterministicPerSeed) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 8;
  auto plan = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage);
  ASSERT_TRUE(plan.ok());
  SkewParams params;
  params.theta = 0.7;
  params.seed = 99;
  auto a = SkewedResponseTime(*plan, params, usage);
  auto b = SkewedResponseTime(*plan, params, usage);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace mrs
