#include "workload/tpch_like.h"

#include <gtest/gtest.h>

#include "core/tree_schedule.h"
#include "cost/cost_model.h"
#include "plan/task_tree.h"

namespace mrs {
namespace {

TEST(TpchLikeTest, AllShapesParseAndFinalize) {
  for (const std::string& shape : TpchLikeShapes()) {
    auto q = MakeTpchLikeQuery(shape, 0.01);
    ASSERT_TRUE(q.ok()) << shape << ": " << q.status().ToString();
    EXPECT_EQ(q->name, shape);
    EXPECT_TRUE(q->parsed.plan->finalized());
    EXPECT_EQ(q->parsed.catalog->num_relations(), 8);
  }
}

TEST(TpchLikeTest, CardinalitiesScaleLinearly) {
  auto small = MakeTpchLikeQuery("q3-like", 0.01);
  auto large = MakeTpchLikeQuery("q3-like", 0.1);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  const int64_t small_li =
      small->parsed.catalog->GetRelationByName("lineitem")->num_tuples;
  const int64_t large_li =
      large->parsed.catalog->GetRelationByName("lineitem")->num_tuples;
  EXPECT_EQ(small_li, 60000);
  EXPECT_EQ(large_li, 600000);
  // Tiny relations clamp to at least one tuple.
  auto tiny = MakeTpchLikeQuery("q3-like", 1e-9);
  ASSERT_TRUE(tiny.ok());
  EXPECT_GE(tiny->parsed.catalog->GetRelationByName("region")->num_tuples,
            1);
}

TEST(TpchLikeTest, ShapesHaveExpectedStructure) {
  auto q3 = MakeTpchLikeQuery("q3-like");
  ASSERT_TRUE(q3.ok());
  EXPECT_EQ(q3->parsed.plan->num_joins(), 2);
  EXPECT_EQ(q3->parsed.plan->num_unary(), 1);  // the sort
  EXPECT_EQ(q3->parsed.plan->node(q3->parsed.plan->root()).kind,
            PlanNodeKind::kSort);

  auto q9 = MakeTpchLikeQuery("q9-like");
  ASSERT_TRUE(q9.ok());
  EXPECT_EQ(q9->parsed.plan->num_joins(), 5);
  EXPECT_EQ(q9->parsed.plan->node(q9->parsed.plan->root()).kind,
            PlanNodeKind::kAggregate);

  auto q18 = MakeTpchLikeQuery("q18-like");
  ASSERT_TRUE(q18.ok());
  EXPECT_EQ(q18->parsed.plan->num_joins(), 2);
  EXPECT_EQ(q18->parsed.plan->num_unary(), 1);  // the pre-aggregation
}

TEST(TpchLikeTest, SchedulesEndToEnd) {
  for (const std::string& shape : TpchLikeShapes()) {
    auto q = MakeTpchLikeQuery(shape, 0.005);
    ASSERT_TRUE(q.ok());
    auto ops = OperatorTree::FromPlan(*q->parsed.plan);
    ASSERT_TRUE(ops.ok());
    OperatorTree op_tree = std::move(ops).value();
    auto tasks = TaskTree::FromOperatorTree(&op_tree);
    ASSERT_TRUE(tasks.ok());
    CostModel model(CostParams{}, kDefaultDims);
    auto costs = model.CostAll(op_tree);
    ASSERT_TRUE(costs.ok());
    MachineConfig machine;
    machine.num_sites = 12;
    OverlapUsageModel usage(0.5);
    auto schedule = TreeSchedule(op_tree, *tasks, costs.value(), CostParams{},
                                 machine, usage);
    ASSERT_TRUE(schedule.ok()) << shape;
    EXPECT_GT(schedule->response_time, 0.0);
    for (const auto& phase : schedule->phases) {
      EXPECT_TRUE(phase.schedule.Validate(phase.ops).ok());
    }
  }
}

TEST(TpchLikeTest, RejectsBadInput) {
  EXPECT_FALSE(MakeTpchLikeQuery("q99-like").ok());
  EXPECT_FALSE(MakeTpchLikeQuery("q3-like", 0.0).ok());
  EXPECT_FALSE(MakeTpchLikeQuery("q3-like", -1.0).ok());
}

}  // namespace
}  // namespace mrs
