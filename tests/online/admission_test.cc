#include "online/admission.h"

#include <gtest/gtest.h>

namespace mrs {
namespace {

AdmissionRequest Req(uint64_t id, double arrival, double makespan = 10.0,
                     double memory = 0.0, double deadline = -1.0) {
  AdmissionRequest r;
  r.id = id;
  r.arrival_ms = arrival;
  r.deadline_ms = deadline;
  r.expected_makespan_ms = makespan;
  r.memory_bytes = memory;
  return r;
}

TEST(AdmissionOptionsTest, Validates) {
  AdmissionOptions ok;
  EXPECT_TRUE(ok.Validate().ok());
  AdmissionOptions bad_mpl;
  bad_mpl.max_in_flight = 0;
  EXPECT_EQ(bad_mpl.Validate().code(), StatusCode::kInvalidArgument);
  AdmissionOptions bad_depth;
  bad_depth.max_queue_depth = -1;
  EXPECT_EQ(bad_depth.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(AdmissionControllerTest, AdmitsUpToMplThenQueues) {
  AdmissionOptions options;
  options.max_in_flight = 2;
  AdmissionController ctl(options);
  Status why;
  EXPECT_EQ(ctl.OnArrival(Req(1, 0.0), &why),
            AdmissionController::Decision::kAdmit);
  ctl.OnAdmitted(Req(1, 0.0));
  EXPECT_EQ(ctl.OnArrival(Req(2, 1.0), &why),
            AdmissionController::Decision::kAdmit);
  ctl.OnAdmitted(Req(2, 1.0));
  EXPECT_EQ(ctl.OnArrival(Req(3, 2.0), &why),
            AdmissionController::Decision::kQueue);
  EXPECT_EQ(ctl.in_flight(), 2);
  EXPECT_EQ(ctl.queue_depth(), 1);
}

TEST(AdmissionControllerTest, RejectsWhenQueueFull) {
  AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 1;
  AdmissionController ctl(options);
  Status why;
  ASSERT_EQ(ctl.OnArrival(Req(1, 0.0), &why),
            AdmissionController::Decision::kAdmit);
  ctl.OnAdmitted(Req(1, 0.0));
  ASSERT_EQ(ctl.OnArrival(Req(2, 1.0), &why),
            AdmissionController::Decision::kQueue);
  EXPECT_EQ(ctl.OnArrival(Req(3, 2.0), &why),
            AdmissionController::Decision::kReject);
  EXPECT_EQ(why.code(), StatusCode::kUnavailable);
}

TEST(AdmissionControllerTest, NoOvertakingWhileQueueNonEmpty) {
  AdmissionOptions options;
  options.max_in_flight = 2;
  AdmissionController ctl(options);
  Status why;
  ASSERT_EQ(ctl.OnArrival(Req(1, 0.0), &why),
            AdmissionController::Decision::kAdmit);
  ctl.OnAdmitted(Req(1, 0.0));
  ASSERT_EQ(ctl.OnArrival(Req(2, 1.0), &why),
            AdmissionController::Decision::kAdmit);
  ctl.OnAdmitted(Req(2, 1.0));
  ASSERT_EQ(ctl.OnArrival(Req(3, 2.0), &why),
            AdmissionController::Decision::kQueue);
  ctl.OnFinished(Req(1, 0.0));
  // A slot is free, but query 3 waits in the queue: a newcomer must not
  // jump it.
  EXPECT_EQ(ctl.OnArrival(Req(4, 3.0), &why),
            AdmissionController::Decision::kQueue);
  AdmissionRequest next;
  ASSERT_TRUE(ctl.PopAdmissible(&next));
  EXPECT_EQ(next.id, 3u);
}

TEST(AdmissionControllerTest, FifoHeadOfLineBlocksOnMemory) {
  AdmissionOptions options;
  options.max_in_flight = 4;
  options.memory_limit_bytes = 100.0;
  AdmissionController ctl(options);
  Status why;
  ASSERT_EQ(ctl.OnArrival(Req(1, 0.0, 10.0, 80.0), &why),
            AdmissionController::Decision::kAdmit);
  ctl.OnAdmitted(Req(1, 0.0, 10.0, 80.0));
  // 50 bytes do not fit next to 80 -> queued despite free slots.
  ASSERT_EQ(ctl.OnArrival(Req(2, 1.0, 10.0, 50.0), &why),
            AdmissionController::Decision::kQueue);
  ASSERT_EQ(ctl.OnArrival(Req(3, 2.0, 10.0, 10.0), &why),
            AdmissionController::Decision::kQueue);
  AdmissionRequest next;
  // FIFO: the 50-byte head blocks even though the 10-byte entry would fit.
  EXPECT_FALSE(ctl.PopAdmissible(&next));
  ctl.OnFinished(Req(1, 0.0, 10.0, 80.0));
  ASSERT_TRUE(ctl.PopAdmissible(&next));
  EXPECT_EQ(next.id, 2u);
}

TEST(AdmissionControllerTest, FifoHeadOfLineStarvesSmallerFits) {
  // Pins the documented default semantics: strict FIFO never lets a
  // fitting query overtake a blocked head — even across arbitrarily many
  // admission attempts and unrelated completions, the small request
  // starves until the head itself fits (fairness over utilization; see
  // AdmissionOptions::allow_fifo_bypass for the escape hatch).
  AdmissionOptions options;
  options.max_in_flight = 4;
  options.memory_limit_bytes = 100.0;
  AdmissionController ctl(options);
  Status why;
  ASSERT_EQ(ctl.OnArrival(Req(1, 0.0, 10.0, 90.0), &why),
            AdmissionController::Decision::kAdmit);
  ctl.OnAdmitted(Req(1, 0.0, 10.0, 90.0));
  // Head needs 50 (doesn't fit next to 90); the 5-byte query behind it
  // would fit trivially.
  ASSERT_EQ(ctl.OnArrival(Req(2, 1.0, 10.0, 50.0), &why),
            AdmissionController::Decision::kQueue);
  ASSERT_EQ(ctl.OnArrival(Req(3, 2.0, 10.0, 5.0), &why),
            AdmissionController::Decision::kQueue);
  AdmissionRequest next;
  for (int attempt = 0; attempt < 10; ++attempt) {
    EXPECT_FALSE(ctl.PopAdmissible(&next)) << "attempt " << attempt;
  }
  // Unrelated zero-memory churn does not unblock the queue either.
  ctl.OnAdmitted(Req(10, 3.0, 10.0, 0.0));
  ctl.OnFinished(Req(10, 3.0, 10.0, 0.0));
  EXPECT_FALSE(ctl.PopAdmissible(&next));
  EXPECT_EQ(ctl.queue_depth(), 2);
  // Only the head's own memory becoming available drains it — in order.
  ctl.OnFinished(Req(1, 0.0, 10.0, 90.0));
  ASSERT_TRUE(ctl.PopAdmissible(&next));
  EXPECT_EQ(next.id, 2u);
  ASSERT_TRUE(ctl.PopAdmissible(&next));
  EXPECT_EQ(next.id, 3u);
}

TEST(AdmissionControllerTest, FifoBypassAdmitsFirstFittingBehindBlockedHead) {
  AdmissionOptions options;
  options.max_in_flight = 4;
  options.memory_limit_bytes = 100.0;
  options.allow_fifo_bypass = true;
  AdmissionController ctl(options);
  Status why;
  ASSERT_EQ(ctl.OnArrival(Req(1, 0.0, 10.0, 90.0), &why),
            AdmissionController::Decision::kAdmit);
  ctl.OnAdmitted(Req(1, 0.0, 10.0, 90.0));
  ASSERT_EQ(ctl.OnArrival(Req(2, 1.0, 10.0, 50.0), &why),
            AdmissionController::Decision::kQueue);
  ASSERT_EQ(ctl.OnArrival(Req(3, 2.0, 10.0, 20.0), &why),
            AdmissionController::Decision::kQueue);
  ASSERT_EQ(ctl.OnArrival(Req(4, 3.0, 10.0, 5.0), &why),
            AdmissionController::Decision::kQueue);
  // 10 bytes are free: the head (50) is blocked and so is query 3 (20);
  // query 4 (5 bytes) is the first *fitting* query in arrival order and
  // bypasses.
  AdmissionRequest next;
  ASSERT_TRUE(ctl.PopAdmissible(&next));
  EXPECT_EQ(next.id, 4u);
  ctl.OnAdmitted(next);
  // 95 in use: nothing else fits; the head keeps its place at the front.
  EXPECT_FALSE(ctl.PopAdmissible(&next));
  ctl.OnFinished(Req(1, 0.0, 10.0, 90.0));
  ASSERT_TRUE(ctl.PopAdmissible(&next));
  EXPECT_EQ(next.id, 2u);
  ASSERT_TRUE(ctl.PopAdmissible(&next));
  EXPECT_EQ(next.id, 3u);
}

TEST(AdmissionControllerTest, ShortestMakespanFirstSkipsOversized) {
  AdmissionOptions options;
  options.policy = AdmissionPolicy::kShortestMakespanFirst;
  options.max_in_flight = 4;
  options.memory_limit_bytes = 100.0;
  AdmissionController ctl(options);
  Status why;
  ASSERT_EQ(ctl.OnArrival(Req(1, 0.0, 10.0, 80.0), &why),
            AdmissionController::Decision::kAdmit);
  ctl.OnAdmitted(Req(1, 0.0, 10.0, 80.0));
  ASSERT_EQ(ctl.OnArrival(Req(2, 1.0, 5.0, 50.0), &why),
            AdmissionController::Decision::kQueue);
  ASSERT_EQ(ctl.OnArrival(Req(3, 2.0, 20.0, 10.0), &why),
            AdmissionController::Decision::kQueue);
  ASSERT_EQ(ctl.OnArrival(Req(4, 3.0, 8.0, 15.0), &why),
            AdmissionController::Decision::kQueue);
  AdmissionRequest next;
  // Query 2 is shortest but does not fit; 4 is the shortest that fits.
  ASSERT_TRUE(ctl.PopAdmissible(&next));
  EXPECT_EQ(next.id, 4u);
  ctl.OnAdmitted(next);
  // 95/100 bytes in use: nothing else fits until query 1 releases its 80.
  EXPECT_FALSE(ctl.PopAdmissible(&next));
  ctl.OnFinished(Req(1, 0.0, 10.0, 80.0));
  ASSERT_TRUE(ctl.PopAdmissible(&next));
  EXPECT_EQ(next.id, 2u);
}

TEST(AdmissionControllerTest, RejectsSingleQueryOverTotalBudget) {
  AdmissionOptions options;
  options.memory_limit_bytes = 100.0;
  AdmissionController ctl(options);
  Status why;
  EXPECT_EQ(ctl.OnArrival(Req(1, 0.0, 10.0, 150.0), &why),
            AdmissionController::Decision::kReject);
  EXPECT_EQ(why.code(), StatusCode::kUnavailable);
  EXPECT_EQ(ctl.queue_depth(), 0);
}

TEST(AdmissionControllerTest, ExpiresDeadlinesInArrivalOrder) {
  AdmissionOptions options;
  options.max_in_flight = 1;
  AdmissionController ctl(options);
  Status why;
  ASSERT_EQ(ctl.OnArrival(Req(1, 0.0), &why),
            AdmissionController::Decision::kAdmit);
  ctl.OnAdmitted(Req(1, 0.0));
  ASSERT_EQ(ctl.OnArrival(Req(2, 1.0, 10.0, 0.0, 5.0), &why),
            AdmissionController::Decision::kQueue);
  ASSERT_EQ(ctl.OnArrival(Req(3, 2.0, 10.0, 0.0, 4.0), &why),
            AdmissionController::Decision::kQueue);
  ASSERT_EQ(ctl.OnArrival(Req(4, 3.0), &why),
            AdmissionController::Decision::kQueue);
  EXPECT_DOUBLE_EQ(ctl.NextDeadline(), 4.0);
  auto expired = ctl.ExpireDeadlines(4.5);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 3u);
  expired = ctl.ExpireDeadlines(10.0);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 2u);
  EXPECT_EQ(ctl.queue_depth(), 1);
  EXPECT_LT(ctl.NextDeadline(), 0.0);
}

TEST(AdmissionControllerTest, MemoryAccountingReleasesOnFinish) {
  AdmissionOptions options;
  options.memory_limit_bytes = 100.0;
  AdmissionController ctl(options);
  Status why;
  ASSERT_EQ(ctl.OnArrival(Req(1, 0.0, 10.0, 60.0), &why),
            AdmissionController::Decision::kAdmit);
  ctl.OnAdmitted(Req(1, 0.0, 10.0, 60.0));
  EXPECT_DOUBLE_EQ(ctl.memory_in_use_bytes(), 60.0);
  ctl.OnFinished(Req(1, 0.0, 10.0, 60.0));
  EXPECT_DOUBLE_EQ(ctl.memory_in_use_bytes(), 0.0);
  EXPECT_EQ(ctl.in_flight(), 0);
}

TEST(AdmissionPolicyTest, Names) {
  EXPECT_EQ(AdmissionPolicyToString(AdmissionPolicy::kFifo), "fifo");
  EXPECT_EQ(AdmissionPolicyToString(AdmissionPolicy::kShortestMakespanFirst),
            "shortest-makespan-first");
}

}  // namespace
}  // namespace mrs
