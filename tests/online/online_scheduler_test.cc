#include "online/online_scheduler.h"

#include <gtest/gtest.h>

#include <set>

#include "core/list_schedule.h"
#include "core/tree_schedule.h"
#include "io/schedule_export.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::MakeFixture;
using testing_util::PipelinedChainFixture;
using testing_util::PlanFixture;

PlanFixture SingleJoinFixture(int64_t outer, int64_t inner) {
  return MakeFixture({outer, inner}, [](PlanTree* plan) {
    plan->AddJoin(plan->AddLeaf(0).value(), plan->AddLeaf(1).value()).value();
  });
}

/// The offline TREESCHEDULE of a fixture under the scheduler's defaults.
TreeScheduleResult OfflineSchedule(const PlanFixture& fx,
                                   const MachineConfig& machine,
                                   const TreeScheduleOptions& options = {}) {
  OverlapUsageModel usage(0.5);
  auto result = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             machine, usage, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(OnlineSchedulerTest, IdleSystemMatchesOfflineByteForByte) {
  PlanFixture fx = BushyFourWayFixture();
  MachineConfig machine;
  const TreeScheduleResult offline = OfflineSchedule(fx, machine);

  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  OnlineScheduler sched(CostParams{}, machine, options);
  const uint64_t id = sched.Submit(*fx.plan);
  ASSERT_TRUE(sched.ResolveQuery(id).ok());
  const OnlineQueryResult* r = sched.result(id);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->state, OnlineQueryState::kRunning);  // placed, clock behind
  ASSERT_TRUE(sched.Drain().ok());
  EXPECT_EQ(r->state, OnlineQueryState::kDone);

  // With nothing else resident the incremental path must reproduce the
  // offline schedule exactly — same placements, same phase makespans,
  // byte-identical JSON.
  EXPECT_EQ(TreeScheduleToJson(r->schedule), TreeScheduleToJson(offline));
  EXPECT_DOUBLE_EQ(r->schedule.response_time, offline.response_time);
  EXPECT_DOUBLE_EQ(r->expected_makespan_ms, r->schedule.response_time);
  EXPECT_DOUBLE_EQ(r->finish_ms - r->admit_ms, offline.response_time);
  ASSERT_EQ(r->timings.size(), offline.phases.size());
  for (size_t k = 0; k < r->timings.size(); ++k) {
    EXPECT_DOUBLE_EQ(r->timings[k].DurationMs(),
                     offline.phases[k].makespan);
    EXPECT_DOUBLE_EQ(r->timings[k].uncontended_ms,
                     offline.phases[k].makespan);
  }
}

TEST(OnlineSchedulerTest, PlacementIndexMatchesLinearOnResidualPath) {
  // The placement-index switch threads through the online service's
  // residual-load branch: an overlapping multi-query workload placed with
  // the indexed engine must produce byte-identical schedule JSON to the
  // linear-scan oracle, phase by phase, while residents actually contend.
  PlanFixture fa = BushyFourWayFixture();
  PlanFixture fb = PipelinedChainFixture(3);
  MachineConfig machine;

  auto run = [&](bool use_index) {
    MetricsRegistry metrics;
    OnlineSchedulerOptions options;
    options.metrics = &metrics;
    options.tree.list_options.placement_index = use_index;
    OnlineScheduler sched(CostParams{}, machine, options);
    const uint64_t a = sched.Submit(*fa.plan, 0.0);
    // Overlap: B arrives while A's clones are resident.
    const uint64_t b = sched.Submit(*fb.plan, 0.5);
    EXPECT_TRUE(sched.Drain().ok());
    const OnlineQueryResult* ra = sched.result(a);
    const OnlineQueryResult* rb = sched.result(b);
    EXPECT_EQ(ra->state, OnlineQueryState::kDone);
    EXPECT_EQ(rb->state, OnlineQueryState::kDone);
    return TreeScheduleToJson(ra->schedule) + TreeScheduleToJson(rb->schedule);
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(OnlineSchedulerTest, DisjointCapacityKeepsSingleQueryMakespans) {
  PlanFixture fa = SingleJoinFixture(8000, 4000);
  PlanFixture fb = SingleJoinFixture(1500, 1200);
  MachineConfig machine;
  // Coarse granularity keeps both queries' degrees well under the site
  // count, so least-loaded placement puts B on sites A does not touch.
  TreeScheduleOptions coarse;
  coarse.granularity = 0.1;
  const TreeScheduleResult offline_a = OfflineSchedule(fa, machine, coarse);
  const TreeScheduleResult offline_b = OfflineSchedule(fb, machine, coarse);

  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  options.tree.granularity = 0.1;
  OnlineScheduler sched(CostParams{}, machine, options);
  const uint64_t a = sched.Submit(*fa.plan, 0.0);
  const OnlineQueryResult* ra = sched.result(a);
  ASSERT_NE(ra, nullptr);
  ASSERT_EQ(ra->state, OnlineQueryState::kRunning);
  ASSERT_FALSE(ra->timings.empty());
  // B arrives late in A's first phase (so A is still resident when B
  // places, and B is still resident when A places its probe phase).
  const uint64_t b = sched.Submit(*fb.plan, 0.85 * ra->timings[0].DurationMs());
  ASSERT_TRUE(sched.Drain().ok());
  const OnlineQueryResult* rb = sched.result(b);
  ASSERT_NE(rb, nullptr);
  ASSERT_EQ(ra->state, OnlineQueryState::kDone);
  ASSERT_EQ(rb->state, OnlineQueryState::kDone);

  // The queries' lifetimes genuinely interleave...
  EXPECT_LT(rb->admit_ms, ra->finish_ms);
  EXPECT_GT(rb->finish_ms, ra->finish_ms - ra->timings.back().DurationMs());
  // ...yet least-loaded placement routed every clone onto capacity the
  // other query was not using, so contention changes nothing: each
  // interleaved phase runs for exactly its uncontended makespan, which in
  // turn equals the single-query (offline) phase makespan.
  ASSERT_EQ(ra->timings.size(), offline_a.phases.size());
  for (size_t k = 0; k < ra->timings.size(); ++k) {
    EXPECT_DOUBLE_EQ(ra->timings[k].DurationMs(),
                     ra->timings[k].uncontended_ms);
    EXPECT_NEAR(ra->timings[k].DurationMs(), offline_a.phases[k].makespan,
                1e-9);
  }
  ASSERT_EQ(rb->timings.size(), offline_b.phases.size());
  for (size_t k = 0; k < rb->timings.size(); ++k) {
    EXPECT_DOUBLE_EQ(rb->timings[k].DurationMs(),
                     rb->timings[k].uncontended_ms);
    EXPECT_NEAR(rb->timings[k].DurationMs(), offline_b.phases[k].makespan,
                1e-9);
  }
  EXPECT_NEAR(rb->schedule.response_time, offline_b.response_time, 1e-9);
  // A's first phase was placed on a genuinely idle machine, so its
  // footprint matches offline exactly. (Later phases of A are placed
  // while B is resident and legitimately shift to equivalent free sites.)
  auto phase_sites = [](const TreeScheduleResult& r, size_t k) {
    std::set<int> sites;
    for (const auto& p : r.phases[k].schedule.placements()) {
      sites.insert(p.site);
    }
    return sites;
  };
  EXPECT_EQ(phase_sites(ra->schedule, 0), phase_sites(offline_a, 0));
}

TEST(OnlineSchedulerTest, ContendedPhasesStayWithinModelBounds) {
  PlanFixture fa = PipelinedChainFixture(2, 20000);
  PlanFixture fb = PipelinedChainFixture(2, 18000);
  MachineConfig machine;
  machine.num_sites = 4;  // force the queries onto shared sites

  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  OnlineScheduler sched(CostParams{}, machine, options);
  const uint64_t a = sched.Submit(*fa.plan, 0.0);
  const OnlineQueryResult* ra = sched.result(a);
  ASSERT_NE(ra, nullptr);
  ASSERT_FALSE(ra->timings.empty());
  const uint64_t b = sched.Submit(*fb.plan, 0.3 * ra->timings[0].DurationMs());
  ASSERT_TRUE(sched.CheckInvariants().ok());
  ASSERT_TRUE(sched.Drain().ok());

  const OnlineQueryResult* rb = sched.result(b);
  ASSERT_NE(rb, nullptr);
  bool contended = false;
  for (const OnlineQueryResult* r : {ra, rb}) {
    ASSERT_EQ(r->state, OnlineQueryState::kDone);
    for (const OnlinePhaseTiming& t : r->timings) {
      EXPECT_GE(t.DurationMs() + 1e-9, t.uncontended_ms);
      EXPECT_LE(t.DurationMs(), t.serial_bound_ms + 1e-9);
      if (t.DurationMs() > t.uncontended_ms + 1e-9) contended = true;
    }
  }
  // On 4 shared sites the overlap must actually bite somewhere.
  EXPECT_TRUE(contended);
}

TEST(OnlineSchedulerTest, MplOneQueuesInFifoOrder) {
  PlanFixture fx = SingleJoinFixture(5000, 2500);
  MachineConfig machine;
  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  options.admission.max_in_flight = 1;
  OnlineScheduler sched(CostParams{}, machine, options);
  const uint64_t a = sched.Submit(*fx.plan, 0.0);
  const uint64_t b = sched.Submit(*fx.plan, 1.0);
  const uint64_t c = sched.Submit(*fx.plan, 2.0);
  EXPECT_EQ(sched.result(b)->state, OnlineQueryState::kQueued);
  EXPECT_EQ(sched.result(c)->state, OnlineQueryState::kQueued);
  EXPECT_EQ(sched.queue_depth(), 2);
  ASSERT_TRUE(sched.CheckInvariants().ok());
  ASSERT_TRUE(sched.Drain().ok());

  const OnlineQueryResult* ra = sched.result(a);
  const OnlineQueryResult* rb = sched.result(b);
  const OnlineQueryResult* rc = sched.result(c);
  EXPECT_EQ(rb->state, OnlineQueryState::kDone);
  EXPECT_EQ(rc->state, OnlineQueryState::kDone);
  // Strict FIFO: b starts exactly when a finishes, c when b finishes.
  EXPECT_DOUBLE_EQ(rb->admit_ms, ra->finish_ms);
  EXPECT_DOUBLE_EQ(rc->admit_ms, rb->finish_ms);
  EXPECT_DOUBLE_EQ(rb->QueueWaitMs(), ra->finish_ms - 1.0);
  // Each runs alone on an idle machine, so the response times agree.
  EXPECT_DOUBLE_EQ(ra->schedule.response_time, rb->schedule.response_time);
}

TEST(OnlineSchedulerTest, QueueWaitTimeoutExpires) {
  PlanFixture fx = SingleJoinFixture(20000, 10000);
  MachineConfig machine;
  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  options.admission.max_in_flight = 1;
  OnlineScheduler sched(CostParams{}, machine, options);
  const uint64_t a = sched.Submit(*fx.plan, 0.0);
  const uint64_t b = sched.Submit(*fx.plan, 0.5, /*timeout_ms=*/1.0);
  ASSERT_TRUE(sched.Drain().ok());
  const OnlineQueryResult* rb = sched.result(b);
  EXPECT_EQ(rb->state, OnlineQueryState::kTimedOut);
  EXPECT_EQ(rb->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(rb->finish_ms, 1.5);
  EXPECT_DOUBLE_EQ(rb->QueueWaitMs(), 1.0);
  EXPECT_EQ(sched.result(a)->state, OnlineQueryState::kDone);
  EXPECT_EQ(metrics.Snapshot().CounterValue("online.timeout"), 1u);
}

TEST(OnlineSchedulerTest, FinishWinsExactDeadlineTie) {
  // The waiter's deadline lands at the *exact* instant the running query
  // finishes. The finish must dispatch first (EventLater breaks the
  // timestamp tie in its favor) and the admission path must pop the
  // now-admissible waiter before expiring deadlines, so the waiter is
  // admitted rather than timed out.
  PlanFixture fx = SingleJoinFixture(20000, 10000);
  MachineConfig machine;
  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  options.admission.max_in_flight = 1;
  OnlineScheduler sched(CostParams{}, machine, options);
  const uint64_t a = sched.Submit(*fx.plan, 0.0);
  ASSERT_TRUE(sched.ResolveQuery(a).ok());
  // a runs alone, so its projected finish is exact; b arrives at 0 with a
  // budget of exactly that instant — deadline == finish, bit for bit.
  const double finish = sched.result(a)->ProjectedFinishMs();
  ASSERT_GT(finish, 0.0);
  const uint64_t b = sched.Submit(*fx.plan, 0.0, /*timeout_ms=*/finish);
  EXPECT_EQ(sched.result(b)->state, OnlineQueryState::kQueued);
  ASSERT_TRUE(sched.Drain().ok());

  const OnlineQueryResult* rb = sched.result(b);
  EXPECT_EQ(rb->state, OnlineQueryState::kDone)
      << "deadline expired a waiter whose slot freed at the same instant";
  EXPECT_DOUBLE_EQ(rb->admit_ms, finish);
  EXPECT_DOUBLE_EQ(sched.result(a)->finish_ms, finish);

  // Conservation across the tie: both queries reached exactly one
  // terminal state, nothing double-counted.
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("online.submitted"), 2u);
  EXPECT_EQ(snap.CounterValue("online.admitted"), 2u);
  EXPECT_EQ(snap.CounterValue("online.rejected"), 0u);
  EXPECT_EQ(snap.CounterValue("online.timeout"), 0u);
}

TEST(OnlineSchedulerTest, RejectsWhenQueueFull) {
  PlanFixture fx = SingleJoinFixture(5000, 2500);
  MachineConfig machine;
  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  options.admission.max_in_flight = 1;
  options.admission.max_queue_depth = 0;
  OnlineScheduler sched(CostParams{}, machine, options);
  sched.Submit(*fx.plan, 0.0);
  const uint64_t b = sched.Submit(*fx.plan, 1.0);
  const OnlineQueryResult* rb = sched.result(b);
  EXPECT_EQ(rb->state, OnlineQueryState::kRejected);
  EXPECT_EQ(rb->status.code(), StatusCode::kUnavailable);
  ASSERT_TRUE(sched.Drain().ok());
}

TEST(OnlineSchedulerTest, MemoryBudgetDefersAdmission) {
  PlanFixture fx = SingleJoinFixture(5000, 2500);
  MachineConfig machine;

  // Probe the footprint estimate on a throwaway instance.
  MetricsRegistry scratch_metrics;
  OnlineSchedulerOptions probe;
  probe.metrics = &scratch_metrics;
  OnlineScheduler scratch(CostParams{}, machine, probe);
  const uint64_t p = scratch.Submit(*fx.plan);
  const double footprint = scratch.result(p)->memory_estimate_bytes;
  ASSERT_GT(footprint, 0.0);

  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  options.admission.memory_limit_bytes = 1.5 * footprint;
  OnlineScheduler sched(CostParams{}, machine, options);
  const uint64_t a = sched.Submit(*fx.plan, 0.0);
  const uint64_t b = sched.Submit(*fx.plan, 1.0);
  // Plenty of slots, but the second copy does not fit in memory.
  EXPECT_EQ(sched.result(b)->state, OnlineQueryState::kQueued);
  ASSERT_TRUE(sched.Drain().ok());
  EXPECT_EQ(sched.result(b)->state, OnlineQueryState::kDone);
  EXPECT_DOUBLE_EQ(sched.result(b)->admit_ms, sched.result(a)->finish_ms);

  // A single query beyond the whole budget is rejected outright.
  OnlineSchedulerOptions tiny;
  tiny.metrics = &metrics;
  tiny.admission.memory_limit_bytes = 0.5 * footprint;
  OnlineScheduler strict(CostParams{}, machine, tiny);
  const uint64_t c = strict.Submit(*fx.plan);
  EXPECT_EQ(strict.result(c)->state, OnlineQueryState::kRejected);
  EXPECT_EQ(strict.result(c)->status.code(), StatusCode::kUnavailable);
}

TEST(OnlineSchedulerTest, ShortestMakespanFirstOvertakesInQueue) {
  PlanFixture big = PipelinedChainFixture(3, 20000);
  PlanFixture small = SingleJoinFixture(2000, 1500);
  MachineConfig machine;
  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  options.admission.max_in_flight = 1;
  options.admission.policy = AdmissionPolicy::kShortestMakespanFirst;
  OnlineScheduler sched(CostParams{}, machine, options);
  sched.Submit(*big.plan, 0.0);
  const uint64_t c = sched.Submit(*big.plan, 1.0);
  const uint64_t d = sched.Submit(*small.plan, 2.0);
  ASSERT_TRUE(sched.Drain().ok());
  const OnlineQueryResult* rc = sched.result(c);
  const OnlineQueryResult* rd = sched.result(d);
  ASSERT_EQ(rc->state, OnlineQueryState::kDone);
  ASSERT_EQ(rd->state, OnlineQueryState::kDone);
  EXPECT_LT(rd->expected_makespan_ms, rc->expected_makespan_ms);
  // The shorter query jumped the earlier, longer one.
  EXPECT_LT(rd->admit_ms, rc->admit_ms);
}

TEST(OnlineSchedulerTest, MetricsConserveQueries) {
  PlanFixture fx = SingleJoinFixture(5000, 2500);
  MachineConfig machine;
  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  options.admission.max_in_flight = 1;
  options.admission.max_queue_depth = 1;
  OnlineScheduler sched(CostParams{}, machine, options);
  sched.Submit(*fx.plan, 0.0);                    // admitted
  sched.Submit(*fx.plan, 0.5, /*timeout_ms=*/0.25);  // queued, times out
  sched.Submit(*fx.plan, 0.6);                    // queue full -> rejected
  ASSERT_TRUE(sched.Drain().ok());

  const MetricsSnapshot snap = metrics.Snapshot();
  const uint64_t submitted = snap.CounterValue("online.submitted");
  EXPECT_EQ(submitted, 3u);
  EXPECT_EQ(snap.CounterValue("online.admitted") +
                snap.CounterValue("online.rejected") +
                snap.CounterValue("online.timeout"),
            submitted);
  EXPECT_EQ(snap.CounterValue("online.admitted"), 1u);
  EXPECT_EQ(snap.CounterValue("online.rejected"), 1u);
  EXPECT_EQ(snap.CounterValue("online.timeout"), 1u);
  for (const auto& h : snap.histograms) {
    if (h.name == "online.queue_wait_ms") {
      EXPECT_EQ(h.count, 1u);
    }
    if (h.name == "online.makespan_ms") {
      EXPECT_EQ(h.count, 1u);
    }
  }
  for (const auto& g : snap.gauges) {
    if (g.first == "online.queue_depth") {
      EXPECT_DOUBLE_EQ(g.second, 0.0);
    }
    if (g.first == "online.in_flight") {
      EXPECT_DOUBLE_EQ(g.second, 0.0);
    }
  }
}

TEST(OnlineSchedulerTest, ResidualLoadDrainsToExactZero) {
  PlanFixture fx = SingleJoinFixture(8000, 4000);
  MachineConfig machine;
  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  OnlineScheduler sched(CostParams{}, machine, options);
  sched.Submit(*fx.plan, 0.0);
  double positive = 0.0;
  for (const WorkVector& w : sched.ResidualLoad()) positive += w.Total();
  EXPECT_GT(positive, 0.0);  // phase 0 is resident
  ASSERT_TRUE(sched.Drain().ok());
  for (const WorkVector& w : sched.ResidualLoad()) {
    for (size_t i = 0; i < w.dim(); ++i) {
      EXPECT_EQ(w[i], 0.0);  // exactly zero, not epsilon
    }
  }
  ASSERT_TRUE(sched.CheckInvariants().ok());
}

TEST(OnlineSchedulerTest, RecordsPerQueryTraces) {
  PlanFixture fx = SingleJoinFixture(5000, 2500);
  MachineConfig machine;
  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  options.collect_traces = true;
  options.trace_clock = ScheduleTrace::CountingClock();
  OnlineScheduler sched(CostParams{}, machine, options);
  const uint64_t id = sched.Submit(*fx.plan);
  ASSERT_TRUE(sched.Drain().ok());
  const OnlineQueryResult* r = sched.result(id);
  ASSERT_NE(r, nullptr);
  ASSERT_NE(r->trace, nullptr);
  EXPECT_EQ(r->trace->label(), "query-1");
  TraceSpan span;
  for (const char* name :
       {"expand", "cost_model", "admission_estimate", "admission",
        "parallelize", "operator_schedule", "online_place"}) {
    EXPECT_TRUE(r->trace->FindSpan(name, &span)) << name;
  }
  ASSERT_TRUE(r->trace->FindSpan("admission", &span));
  const std::string* decision = span.FindAttr("decision");
  ASSERT_NE(decision, nullptr);
  EXPECT_EQ(*decision, "admit");
}

TEST(OnlineSchedulerTest, ResolveUnknownQueryIsNotFound) {
  MachineConfig machine;
  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  OnlineScheduler sched(CostParams{}, machine, options);
  EXPECT_EQ(sched.ResolveQuery(42).code(), StatusCode::kNotFound);
  EXPECT_EQ(sched.result(42), nullptr);
  EXPECT_FALSE(sched.Resolved(42));
}

TEST(OnlineSchedulerTest, ListEngineIdleMatchesOfflineListSchedule) {
  PlanFixture fx = BushyFourWayFixture();
  MachineConfig machine;
  OverlapUsageModel usage(0.5);
  auto offline = ListSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                              machine, usage, ListScheduleOptions{});
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();

  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  options.engine = OnlineEngine::kList;
  OnlineScheduler sched(CostParams{}, machine, options);
  const uint64_t id = sched.Submit(*fx.plan);
  ASSERT_TRUE(sched.ResolveQuery(id).ok());
  const OnlineQueryResult* r = sched.result(id);
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(sched.Drain().ok());
  EXPECT_EQ(r->state, OnlineQueryState::kDone);
  // One-shot placement: a single whole-query "phase" whose duration is the
  // barrier-free makespan, matching the offline ListSchedule exactly on an
  // idle machine.
  ASSERT_EQ(r->schedule.phases.size(), 1u);
  EXPECT_EQ(r->schedule.response_time, offline->makespan);
  EXPECT_EQ(r->expected_makespan_ms, offline->makespan);
  EXPECT_EQ(r->finish_ms - r->admit_ms, offline->makespan);
  ASSERT_EQ(r->timings.size(), 1u);
  EXPECT_EQ(r->timings[0].DurationMs(), offline->makespan);
}

TEST(OnlineSchedulerTest, ListEngineNeverWorseThanTreeWhenIdle) {
  // tree_guard makes the per-query LISTSCHEDULE result never exceed the
  // TREESCHEDULE response time; on an idle machine the online response
  // times inherit the invariant.
  for (auto make : {+[] { return BushyFourWayFixture(); },
                    +[] { return PipelinedChainFixture(5); }}) {
    PlanFixture fx = make();
    MachineConfig machine;
    double response[2];
    int i = 0;
    for (const OnlineEngine engine :
         {OnlineEngine::kTree, OnlineEngine::kList}) {
      MetricsRegistry metrics;
      OnlineSchedulerOptions options;
      options.metrics = &metrics;
      options.engine = engine;
      OnlineScheduler sched(CostParams{}, machine, options);
      const uint64_t id = sched.Submit(*fx.plan);
      ASSERT_TRUE(sched.ResolveQuery(id).ok());
      ASSERT_TRUE(sched.Drain().ok());
      response[i++] = sched.result(id)->schedule.response_time;
    }
    EXPECT_LE(response[1], response[0]);
  }
}

TEST(OnlineSchedulerTest, EnginesAreRunToRunDeterministic) {
  // The same overlapping workload, submitted twice to a fresh scheduler,
  // must produce byte-identical schedules — for the default engine (the
  // historical TREESCHEDULE path) and for the LISTSCHEDULE engine.
  PlanFixture fa = BushyFourWayFixture();
  PlanFixture fb = PipelinedChainFixture(3);
  MachineConfig machine;
  for (const OnlineEngine engine :
       {OnlineEngine::kTree, OnlineEngine::kList}) {
    auto run = [&] {
      MetricsRegistry metrics;
      OnlineSchedulerOptions options;
      options.metrics = &metrics;
      options.engine = engine;
      OnlineScheduler sched(CostParams{}, machine, options);
      const uint64_t a = sched.Submit(*fa.plan, 0.0);
      const uint64_t b = sched.Submit(*fb.plan, 0.5);
      EXPECT_TRUE(sched.Drain().ok());
      EXPECT_TRUE(sched.CheckInvariants().ok());
      return TreeScheduleToJson(sched.result(a)->schedule) +
             TreeScheduleToJson(sched.result(b)->schedule);
    };
    EXPECT_EQ(run(), run());
  }
}

TEST(OnlineSchedulerTest, ListEngineContendedRunDrainsCleanly) {
  PlanFixture fa = BushyFourWayFixture();
  PlanFixture fb = PipelinedChainFixture(4);
  MachineConfig machine;
  MetricsRegistry metrics;
  OnlineSchedulerOptions options;
  options.metrics = &metrics;
  options.engine = OnlineEngine::kList;
  OnlineScheduler sched(CostParams{}, machine, options);
  const uint64_t a = sched.Submit(*fa.plan, 0.0);
  const uint64_t b = sched.Submit(*fb.plan, 0.25);
  ASSERT_TRUE(sched.CheckInvariants().ok());
  ASSERT_TRUE(sched.Drain().ok());
  EXPECT_EQ(sched.result(a)->state, OnlineQueryState::kDone);
  EXPECT_EQ(sched.result(b)->state, OnlineQueryState::kDone);
  ASSERT_TRUE(sched.CheckInvariants().ok());
  for (const WorkVector& w : sched.ResidualLoad()) {
    for (size_t d = 0; d < w.dim(); ++d) {
      EXPECT_EQ(w[d], 0.0) << "residual load left behind";
    }
  }
}

TEST(OnlineQueryStateTest, Names) {
  EXPECT_EQ(OnlineQueryStateToString(OnlineQueryState::kQueued), "queued");
  EXPECT_EQ(OnlineQueryStateToString(OnlineQueryState::kDone), "done");
  EXPECT_EQ(OnlineQueryStateToString(OnlineQueryState::kTimedOut),
            "timed-out");
}

}  // namespace
}  // namespace mrs
