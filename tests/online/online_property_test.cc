#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "online/online_scheduler.h"
#include "test_util.h"
#include "workload/generator.h"

namespace mrs {
namespace {

constexpr double kTol = 1e-9;

/// Residual load must stay component-wise non-negative, and every placed
/// phase must run at least as long as its uncontended (eq. 3) makespan
/// and at most as long as its fully-serialized bound.
void CheckScheduler(const OnlineScheduler& sched) {
  ASSERT_TRUE(sched.CheckInvariants().ok());
  for (const WorkVector& w : sched.ResidualLoad()) {
    for (size_t i = 0; i < w.dim(); ++i) {
      ASSERT_GE(w[i], 0.0) << "negative residual in dim " << i;
    }
  }
}

void CheckTimings(const OnlineQueryResult& r) {
  for (const OnlinePhaseTiming& t : r.timings) {
    ASSERT_GE(t.DurationMs() + kTol, t.uncontended_ms)
        << "phase " << t.phase << " of query " << r.id
        << " finished below its uncontended makespan";
    ASSERT_LE(t.DurationMs(), t.serial_bound_ms + kTol)
        << "phase " << t.phase << " of query " << r.id
        << " exceeded the serialized bound";
    ASSERT_GE(t.start_ms, r.admit_ms - kTol);
  }
}

TEST(OnlinePropertyTest, RandomWorkloadsKeepInvariants) {
  const uint64_t base_seed = testing_util::FuzzSeed(20260806);
  constexpr int kRounds = 12;
  constexpr int kQueriesPerRound = 10;

  for (int round = 0; round < kRounds; ++round) {
    Rng rng(base_seed + static_cast<uint64_t>(round) * 7919);
    WorkloadParams wp;
    wp.num_joins = static_cast<int>(rng.UniformInt(1, 5));
    wp.min_tuples = 1'000;
    wp.max_tuples = 40'000;
    wp.sort_probability = round % 3 == 0 ? 0.3 : 0.0;
    wp.aggregate_probability = round % 3 == 1 ? 0.3 : 0.0;

    MetricsRegistry metrics;
    OnlineSchedulerOptions options;
    options.metrics = &metrics;
    options.admission.max_in_flight = 1 + static_cast<int>(round % 4);
    options.admission.max_queue_depth = static_cast<int>(round % 3);
    if (round % 4 == 3) {
      options.admission.policy = AdmissionPolicy::kShortestMakespanFirst;
    }
    MachineConfig machine;
    machine.num_sites = 4 + static_cast<int>(rng.UniformInt(0, 12));
    OnlineScheduler sched(CostParams{}, machine, options);

    std::vector<std::unique_ptr<GeneratedQuery>> keep_alive;
    std::vector<uint64_t> ids;
    double arrival = 0.0;
    for (int q = 0; q < kQueriesPerRound; ++q) {
      auto gen = GenerateQuery(wp, &rng);
      ASSERT_TRUE(gen.ok()) << gen.status().ToString();
      auto query = std::make_unique<GeneratedQuery>(std::move(gen).value());
      // Exponential inter-arrivals around the scale of a query makespan.
      arrival += -std::log(1.0 - rng.UniformDouble()) * 40.0;
      const double timeout =
          rng.UniformDouble() < 0.3 ? rng.UniformDouble(1.0, 80.0) : -1.0;
      ids.push_back(sched.Submit(*query->plan, arrival, timeout));
      keep_alive.push_back(std::move(query));
      CheckScheduler(sched);
    }
    ASSERT_TRUE(sched.Drain().ok());
    CheckScheduler(sched);

    // After draining, the machine is exactly empty.
    for (const WorkVector& w : sched.ResidualLoad()) {
      for (size_t i = 0; i < w.dim(); ++i) ASSERT_EQ(w[i], 0.0);
    }

    // Conservation: every submitted query reached exactly one terminal
    // state.
    uint64_t done = 0, rejected = 0, timed_out = 0;
    for (uint64_t id : ids) {
      const OnlineQueryResult* r = sched.result(id);
      ASSERT_NE(r, nullptr);
      ASSERT_TRUE(r->terminal());
      switch (r->state) {
        case OnlineQueryState::kDone:
          ++done;
          CheckTimings(*r);
          ASSERT_GE(r->admit_ms, r->arrival_ms - kTol);
          ASSERT_GT(r->finish_ms, r->admit_ms - kTol);
          for (const auto& phase : r->schedule.phases) {
            ASSERT_GT(phase.schedule.num_placements(), 0);
            ASSERT_GE(phase.makespan, 0.0);
            for (const auto& placement : phase.schedule.placements()) {
              ASSERT_TRUE(placement.work.IsNonNegative());
              ASSERT_GE(placement.t_seq, 0.0);
            }
          }
          break;
        case OnlineQueryState::kRejected:
          ++rejected;
          ASSERT_FALSE(r->status.ok());
          break;
        case OnlineQueryState::kTimedOut:
          ++timed_out;
          ASSERT_EQ(r->status.code(), StatusCode::kDeadlineExceeded);
          break;
        default:
          FAIL() << "non-terminal state after Drain";
      }
    }
    const MetricsSnapshot snap = metrics.Snapshot();
    ASSERT_EQ(snap.CounterValue("online.submitted"),
              static_cast<uint64_t>(kQueriesPerRound));
    ASSERT_EQ(snap.CounterValue("online.admitted"), done);
    ASSERT_EQ(snap.CounterValue("online.rejected"), rejected);
    ASSERT_EQ(snap.CounterValue("online.timeout"), timed_out);
    ASSERT_EQ(done + rejected + timed_out,
              static_cast<uint64_t>(kQueriesPerRound));
  }
}

TEST(OnlinePropertyTest, InterleavedResolutionMatchesDrain) {
  // Resolving queries one by one (as the server does) must reach the same
  // terminal states as draining in bulk.
  const uint64_t seed = testing_util::FuzzSeed(987654321);
  Rng rng(seed);
  WorkloadParams wp;
  wp.num_joins = 3;
  wp.max_tuples = 30'000;

  MetricsRegistry m1, m2;
  OnlineSchedulerOptions o1, o2;
  o1.metrics = &m1;
  o2.metrics = &m2;
  o1.admission.max_in_flight = o2.admission.max_in_flight = 2;
  OnlineScheduler resolve_each(CostParams{}, MachineConfig{}, o1);
  OnlineScheduler drain_once(CostParams{}, MachineConfig{}, o2);

  std::vector<std::unique_ptr<GeneratedQuery>> keep_alive;
  std::vector<std::pair<uint64_t, uint64_t>> ids;
  double arrival = 0.0;
  for (int q = 0; q < 6; ++q) {
    auto gen = GenerateQuery(wp, &rng);
    ASSERT_TRUE(gen.ok());
    auto query = std::make_unique<GeneratedQuery>(std::move(gen).value());
    arrival += 25.0;
    const uint64_t a = resolve_each.Submit(*query->plan, arrival);
    const uint64_t b = drain_once.Submit(*query->plan, arrival);
    ids.emplace_back(a, b);
    keep_alive.push_back(std::move(query));
  }
  // Resolving out of order fires the same events in the same virtual-time
  // order as a bulk drain, just with different stopping points.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    ASSERT_TRUE(resolve_each.ResolveQuery(it->first).ok());
    ASSERT_TRUE(resolve_each.Resolved(it->first));
  }
  ASSERT_TRUE(resolve_each.Drain().ok());
  ASSERT_TRUE(drain_once.Drain().ok());
  for (const auto& [a, b] : ids) {
    const OnlineQueryResult* ra = resolve_each.result(a);
    const OnlineQueryResult* rb = drain_once.result(b);
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(ra->state, rb->state);
    if (ra->state == OnlineQueryState::kDone) {
      EXPECT_DOUBLE_EQ(ra->finish_ms, rb->finish_ms);
      EXPECT_DOUBLE_EQ(ra->schedule.response_time,
                       rb->schedule.response_time);
    }
  }
}

}  // namespace
}  // namespace mrs
