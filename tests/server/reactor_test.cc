// Adversarial-connection and differential coverage for the epoll reactor
// front-end (server/sched_server.cc, SchedServerOptions::reactor):
//
//  * reactor vs thread-per-connection oracle: byte-identical response
//    streams for the same per-client request streams (N concurrent
//    clients, mixed payload sizes forcing partial writes), and for the
//    real scheduling service on a sequential client;
//  * slow-loris byte-at-a-time framing, pipelined frames answered in
//    order, mid-frame disconnect and oversized-frame rejection without
//    tearing down the loop;
//  * drain-on-shutdown with a response still being computed;
//  * write-backlog cap: a peer that stops reading is closed with a typed
//    error (server.backlog_closed) instead of wedging the loop;
//  * peers that RST with responses queued must not kill the process
//    (the write path's MSG_NOSIGNAL vs SIGPIPE regression);
//  * accept-loop survival under RLIMIT_NOFILE pressure (EMFILE), both
//    engines — the `fast`-label smoke for ulimit -n.

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/str_util.h"
#include "io/plan_text.h"
#include "server/framing.h"
#include "server/sched_client.h"
#include "server/sched_server.h"
#include "server/sched_service.h"
#include "server/transport.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::MakeFixture;
using testing_util::PlanFixture;

/// Deterministic request -> response transform: a checksum prefix plus the
/// doubled payload, so responses are fully reproducible across engines and
/// large enough (for large requests) to force partial writes.
class TransformService : public SchedService {
 public:
  static std::string Transform(const std::string& request) {
    uint64_t h = 1469598103934665603ull;
    for (unsigned char ch : request) {
      h ^= ch;
      h *= 1099511628211ull;
    }
    std::string out =
        StrFormat("%016llx:", static_cast<unsigned long long>(h));
    out += request;
    out += request;
    return out;
  }

  std::string Handle(const std::string& request) override {
    return Transform(request);
  }
};

/// Handle() that signals entry and then takes a while — the drain test's
/// "response still queued at Shutdown" window.
class SlowService : public SchedService {
 public:
  std::string Handle(const std::string& request) override {
    entered.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return "slow:" + request;
  }
  std::atomic<bool> entered{false};
};

/// Handle() returning a response far larger than the configured backlog
/// cap, for the stopped-reader test.
class BigService : public SchedService {
 public:
  std::string Handle(const std::string&) override {
    return std::string(12 * 1024 * 1024, 'x');
  }
};

SchedServerOptions ReactorOptions(MetricsRegistry* metrics, bool reactor) {
  SchedServerOptions options;
  options.reactor = reactor;
  options.metrics = metrics;
  return options;
}

/// The per-client request streams of the differential test: mixed sizes,
/// from empty through ~1 MiB responses (doubled 512 KiB requests).
std::vector<std::string> RequestStream(int client_id) {
  std::vector<std::string> requests;
  const size_t sizes[] = {0, 1, 17, 1000, 65536, 512 * 1024};
  for (int round = 0; round < 2; ++round) {
    for (size_t size : sizes) {
      std::string request(size, static_cast<char>('a' + client_id));
      request += StrFormat("|c%d r%d", client_id, round);
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

/// Runs `clients` concurrent TCP clients against a fresh server of the
/// given engine, each sending its RequestStream strictly
/// request-by-request, and returns the per-client response sequences.
std::vector<std::vector<std::string>> RunClients(bool reactor, int clients) {
  MetricsRegistry metrics;
  TransformService service;
  SchedServer server(&service, ReactorOptions(&metrics, reactor));
  Status started = server.Start("127.0.0.1", 0);
  EXPECT_TRUE(started.ok()) << started.ToString();

  std::vector<std::vector<std::string>> responses(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([i, port = server.port(), &responses] {
      auto client = SchedClient::ConnectTcp("127.0.0.1", port);
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      for (const std::string& request : RequestStream(i)) {
        auto response = client->Call(request);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        responses[i].push_back(std::move(response).value());
      }
      client->Close();
    });
  }
  for (std::thread& t : threads) t.join();
  server.Shutdown();
  return responses;
}

TEST(ReactorDifferentialTest, ConcurrentClientsByteIdenticalToThreadedOracle) {
  constexpr int kClients = 6;
  const auto reactor = RunClients(/*reactor=*/true, kClients);
  const auto threaded = RunClients(/*reactor=*/false, kClients);
  ASSERT_EQ(reactor.size(), threaded.size());
  for (int i = 0; i < kClients; ++i) {
    ASSERT_EQ(reactor[i].size(), threaded[i].size()) << "client " << i;
    for (size_t r = 0; r < reactor[i].size(); ++r) {
      // Byte-identical across engines, and both equal the ground truth.
      EXPECT_EQ(reactor[i][r], threaded[i][r])
          << "client " << i << " response " << r;
      EXPECT_EQ(reactor[i][r],
                TransformService::Transform(RequestStream(i)[r]));
    }
  }
}

TEST(ReactorDifferentialTest, RealServiceByteIdenticalToThreadedOracle) {
  PlanFixture fx = MakeFixture({6000, 3000}, [](PlanTree* plan) {
    plan->AddJoin(plan->AddLeaf(0).value(), plan->AddLeaf(1).value()).value();
  });
  auto text = WritePlanText(*fx.catalog, *fx.plan);
  ASSERT_TRUE(text.ok()) << text.status().ToString();

  // A fresh scheduler per engine and a single sequential client make the
  // full responses (ids, virtual times, schedule JSON) deterministic, so
  // the comparison really is byte-for-byte.
  auto run = [&](bool reactor) {
    MetricsRegistry metrics;
    SchedServiceOptions service_options;
    service_options.online.metrics = &metrics;
    service_options.online.admission.max_in_flight = 1;
    SchedService service(service_options);
    SchedServer server(&service, ReactorOptions(&metrics, reactor));
    EXPECT_TRUE(server.Start("127.0.0.1", 0).ok());
    auto client = SchedClient::ConnectTcp("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    std::vector<std::string> responses;
    for (int r = 0; r < 5; ++r) {
      auto response =
          client->Call(StrFormat("@arrival %d\n", r * 1000) + text.value());
      EXPECT_TRUE(response.ok()) << response.status().ToString();
      responses.push_back(std::move(response).value());
    }
    client->Close();
    server.Shutdown();
    return responses;
  };
  const auto reactor = run(true);
  const auto threaded = run(false);
  ASSERT_EQ(reactor.size(), threaded.size());
  for (size_t r = 0; r < reactor.size(); ++r) {
    EXPECT_NE(reactor[r].find("\"status\":\"ok\""), std::string::npos)
        << reactor[r];
    EXPECT_EQ(reactor[r], threaded[r]) << "response " << r;
  }
}

TEST(ReactorAdversarialTest, SlowLorisByteAtATimeFrameIsServed) {
  MetricsRegistry metrics;
  TransformService service;
  SchedServer server(&service, ReactorOptions(&metrics, true));
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());

  auto conn = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  const std::string request = "drip-fed request";
  auto frame = EncodeFrame(request);
  ASSERT_TRUE(frame.ok());
  for (char byte : frame.value()) {
    ASSERT_TRUE(conn.value()->Write(&byte, 1));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  auto response = ReadFrame(conn.value().get());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value(), TransformService::Transform(request));
  conn.value()->Close();
  server.Shutdown();
}

TEST(ReactorAdversarialTest, PipelinedFramesAnswerInOrder) {
  MetricsRegistry metrics;
  TransformService service;
  SchedServer server(&service, ReactorOptions(&metrics, true));
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());

  auto conn = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(conn.ok());
  // A burst of frames lands before any response is read; responses must
  // come back in request order.
  constexpr int kBurst = 12;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    auto frame = EncodeFrame(StrFormat("burst %d", i));
    ASSERT_TRUE(frame.ok());
    burst += frame.value();
  }
  ASSERT_TRUE(
      conn.value()->Write(burst.data(), static_cast<int>(burst.size())));
  for (int i = 0; i < kBurst; ++i) {
    auto response = ReadFrame(conn.value().get());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value(),
              TransformService::Transform(StrFormat("burst %d", i)));
  }
  conn.value()->Close();
  server.Shutdown();
}

TEST(ReactorAdversarialTest, MidFrameDisconnectLeavesLoopServing) {
  MetricsRegistry metrics;
  TransformService service;
  SchedServer server(&service, ReactorOptions(&metrics, true));
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());

  {
    auto victim = ConnectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(victim.ok());
    // Header promising 100 bytes, then 10 bytes, then disconnect.
    char header[kFrameHeaderBytes];
    EncodeFrameHeader(100, header);
    ASSERT_TRUE(victim.value()->Write(header, kFrameHeaderBytes));
    ASSERT_TRUE(victim.value()->Write("ten bytes.", 10));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    victim.value()->Close();
  }

  // The loop is still alive and serving.
  auto client = SchedClient::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto response = client->Call("still here?");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value(), TransformService::Transform("still here?"));
  client->Close();
  server.Shutdown();
  EXPECT_GE(metrics.Snapshot().CounterValue("server.protocol_errors"), 1u);
}

TEST(ReactorAdversarialTest, OversizedFrameRejectedWithoutTearingDownLoop) {
  MetricsRegistry metrics;
  TransformService service;
  SchedServer server(&service, ReactorOptions(&metrics, true));
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());

  auto attacker = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(attacker.ok());
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(static_cast<uint32_t>(kMaxFrameBytes + 1), header);
  ASSERT_TRUE(attacker.value()->Write(header, kFrameHeaderBytes));
  // The server drops the connection without an allocation or a response.
  char buf[16];
  EXPECT_LE(attacker.value()->Read(buf, sizeof(buf)), 0);
  attacker.value()->Close();

  auto client = SchedClient::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto response = client->Call("survivor");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value(), TransformService::Transform("survivor"));
  client->Close();
  server.Shutdown();
  EXPECT_GE(metrics.Snapshot().CounterValue("server.protocol_errors"), 1u);
}

TEST(ReactorAdversarialTest, ShutdownDrainsResponseStillBeingComputed) {
  MetricsRegistry metrics;
  SlowService service;
  auto server =
      std::make_unique<SchedServer>(&service, ReactorOptions(&metrics, true));
  ASSERT_TRUE(server->Start("127.0.0.1", 0).ok());

  auto conn = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(SendFrame(conn.value().get(), "drain me").ok());
  // Wait until the request is inside Handle, then shut down: the drain
  // guarantee says the fully received request still gets its response.
  while (!service.entered.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread shutdown_thread([&server] { server->Shutdown(); });
  auto response = ReadFrame(conn.value().get());
  shutdown_thread.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value(), "slow:drain me");
  conn.value()->Close();
  server.reset();
}

TEST(ReactorAdversarialTest, WriteBacklogCapClosesStoppedReader) {
  MetricsRegistry metrics;
  BigService service;
  SchedServerOptions options = ReactorOptions(&metrics, true);
  options.max_write_backlog_bytes = 64 * 1024;
  SchedServer server(&service, options);
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());

  auto conn = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(conn.ok());
  // Two requests for ~12 MiB responses each, reader never drains: kernel
  // buffers cannot absorb them, the per-connection backlog tops the
  // 64 KiB cap, and the server closes the connection with a typed error.
  ASSERT_TRUE(SendFrame(conn.value().get(), "a").ok());
  ASSERT_TRUE(SendFrame(conn.value().get(), "b").ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (metrics.Snapshot().CounterValue("server.backlog_closed") == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "backlog cap never tripped";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  conn.value()->Close();

  // The loop survived; backlog accounting returned to zero.
  auto client = SchedClient::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  server.Shutdown();
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_GE(snap.CounterValue("server.backlog_closed"), 1u);
  for (const auto& [name, value] : snap.gauges) {
    if (name == "server.write_backlog_bytes") EXPECT_EQ(value, 0.0);
  }
}

TEST(ReactorAdversarialTest, AbortingPeerWithQueuedResponsesDoesNotKillServer) {
  // Regression for the write path's SIGPIPE exposure: the reactor must
  // write with sendmsg(MSG_NOSIGNAL) so a peer that resets while 12 MiB
  // of response is still queued surfaces as EPIPE/ECONNRESET on that
  // connection. With a bare writev the kernel could deliver SIGPIPE,
  // whose default action kills the whole process — every other
  // connection with it. The clients here send a request, never read, and
  // abort with an RST (SO_LINGER {on, 0}) mid-response.
  MetricsRegistry metrics;
  BigService service;
  SchedServer server(&service, ReactorOptions(&metrics, true));
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());

  for (int round = 0; round < 10; ++round) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server.port()));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    auto frame = EncodeFrame("fire and forget");
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(::send(fd, frame->data(), frame->size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame->size()));
    // FIN now (half-close) so the server's side sits in CLOSE_WAIT while
    // it streams the response — the state where a subsequent RST marks
    // the socket EPIPE and a bare write raises SIGPIPE on its very next
    // call (an RST against ESTABLISHED yields only ECONNRESET first).
    ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
    // Drain part of the response so the server keeps re-entering its
    // write burst, then abort with an RST (SO_LINGER {on, 0}) while it
    // is likely mid-burst with megabytes still queued.
    char sink[64 * 1024];
    size_t drained = 0;
    while (drained < (1u << 20) + static_cast<size_t>(round) * 37 * 1024) {
      const ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
      if (n <= 0) break;
      drained += static_cast<size_t>(n);
    }
    const linger reset{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &reset, sizeof(reset));
    ::close(fd);
  }

  // The server notices every aborted connection, returns the backlog
  // accounting to zero, and the loop is still alive and serving.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (true) {
    const MetricsSnapshot snap = metrics.Snapshot();
    double connections = -1.0;
    double backlog = -1.0;
    for (const auto& [name, value] : snap.gauges) {
      if (name == "server.connections") connections = value;
      if (name == "server.write_backlog_bytes") backlog = value;
    }
    if (connections == 0.0 && backlog == 0.0) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "aborted connections never fully reaped";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto client = SchedClient::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto response = client->Call("still alive?");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().size(), 12u * 1024 * 1024);
  client->Close();
  server.Shutdown();
}

int CountOpenFds() {
  int count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

/// RAII guard restoring RLIMIT_NOFILE.
struct FdLimitGuard {
  FdLimitGuard() { ::getrlimit(RLIMIT_NOFILE, &saved); }
  ~FdLimitGuard() { ::setrlimit(RLIMIT_NOFILE, &saved); }
  rlimit saved{};
};

/// The `fast`-label smoke that the server survives ulimit -n pressure:
/// with the fd table nearly exhausted, accept fails with EMFILE; the
/// server must count it, back off, keep serving existing connections, and
/// recover once descriptors free up.
void RunFdExhaustion(bool reactor) {
  const int used = CountOpenFds();
  ASSERT_GT(used, 0);
  FdLimitGuard guard;
  MetricsRegistry metrics;
  TransformService service;
  SchedServer server(&service, ReactorOptions(&metrics, reactor));
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());

  auto survivor = SchedClient::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(survivor.ok());
  auto ok = survivor->Call("before pressure");
  ASSERT_TRUE(ok.ok());

  rlimit tight = guard.saved;
  tight.rlim_cur = static_cast<rlim_t>(used + 12);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);

  // Fill the remaining descriptors with connection attempts. Client-side
  // connect() may succeed from the backlog even when the server side
  // cannot accept; what matters is the server surviving EMFILE.
  std::vector<std::unique_ptr<Connection>> hogs;
  for (int i = 0; i < 24; ++i) {
    auto conn = ConnectTcp("127.0.0.1", server.port());
    if (!conn.ok()) break;  // our own socket() hit the limit — also fine
    hogs.push_back(std::move(conn).value());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (metrics.Snapshot().CounterValue("server.accept_errors") == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "accept never hit resource pressure";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Existing connections still serve while accept is starved.
  auto during = survivor->Call("during pressure");
  ASSERT_TRUE(during.ok()) << during.status().ToString();
  EXPECT_EQ(during.value(), TransformService::Transform("during pressure"));

  // Free the descriptors and lift the limit: accept recovers after the
  // backoff and fresh connections serve again.
  hogs.clear();
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &guard.saved), 0);
  auto recovered_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (true) {
    auto fresh = SchedClient::ConnectTcp("127.0.0.1", server.port());
    if (fresh.ok()) {
      auto after = fresh->Call("after pressure");
      if (after.ok()) {
        EXPECT_EQ(after.value(),
                  TransformService::Transform("after pressure"));
        fresh->Close();
        break;
      }
    }
    ASSERT_LT(std::chrono::steady_clock::now(), recovered_deadline)
        << "accept never recovered after pressure lifted";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  survivor->Close();
  server.Shutdown();
  EXPECT_GE(metrics.Snapshot().CounterValue("server.accept_errors"), 1u);
}

TEST(ReactorAdversarialTest, ReactorAcceptSurvivesFdExhaustion) {
  RunFdExhaustion(/*reactor=*/true);
}

TEST(ReactorAdversarialTest, ThreadedAcceptSurvivesFdExhaustion) {
  RunFdExhaustion(/*reactor=*/false);
}

TEST(ReactorMetricsTest, CountersAndGaugesTrackTraffic) {
  MetricsRegistry metrics;
  TransformService service;
  SchedServer server(&service, ReactorOptions(&metrics, true));
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());

  auto client = SchedClient::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  const std::string request = "count me";
  auto response = client->Call(request);
  ASSERT_TRUE(response.ok());

  // The connection is still open: the gauge must say so.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (true) {
    const MetricsSnapshot snap = metrics.Snapshot();
    double connections = -1.0;
    for (const auto& [name, value] : snap.gauges) {
      if (name == "server.connections") connections = value;
    }
    if (connections == 1.0) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  client->Close();
  server.Shutdown();

  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("server.bytes_in"),
            kFrameHeaderBytes + request.size());
  EXPECT_EQ(snap.CounterValue("server.bytes_out"),
            kFrameHeaderBytes + response.value().size());
  bool found = false;
  for (const HistogramSnapshot& h : snap.histograms) {
    if (h.name == "server.request_ms") {
      found = true;
      EXPECT_EQ(h.count, 1u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace mrs
