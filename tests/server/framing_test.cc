#include "server/framing.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace mrs {
namespace {

TEST(FramingTest, EncodeProducesBigEndianPrefix) {
  const std::string frame = EncodeFrame("abc").value();
  ASSERT_EQ(frame.size(), 7u);
  EXPECT_EQ(static_cast<unsigned char>(frame[0]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(frame[1]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(frame[2]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(frame[3]), 3u);
  EXPECT_EQ(frame.substr(4), "abc");
}

TEST(FramingTest, ParserRoundTripsMultipleFrames) {
  std::string wire = EncodeFrame("first").value() + EncodeFrame("").value() +
                     EncodeFrame(std::string(1000, 'x')).value();
  FrameParser parser;
  ASSERT_TRUE(parser.Append(wire.data(), wire.size()).ok());
  std::string payload;
  ASSERT_TRUE(parser.Next(&payload));
  EXPECT_EQ(payload, "first");
  ASSERT_TRUE(parser.Next(&payload));
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(parser.Next(&payload));
  EXPECT_EQ(payload, std::string(1000, 'x'));
  EXPECT_FALSE(parser.Next(&payload));
  EXPECT_FALSE(parser.MidFrame());
}

TEST(FramingTest, ParserHandlesByteAtATimeDelivery) {
  const std::string wire =
      EncodeFrame("hello").value() + EncodeFrame("world").value();
  FrameParser parser;
  std::vector<std::string> got;
  for (char c : wire) {
    ASSERT_TRUE(parser.Append(&c, 1).ok());
    std::string payload;
    while (parser.Next(&payload)) got.push_back(payload);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "hello");
  EXPECT_EQ(got[1], "world");
}

TEST(FramingTest, EncodeRejectsOversizedPayload) {
  // Regression: an over-cap payload used to be framed anyway (and a
  // > 4 GiB one truncated through the uint32_t length cast), emitting
  // frames the parser on the other side rejects. Now the sender errors.
  const std::string big(kMaxFrameBytes + 1, 'x');
  auto frame = EncodeFrame(big);
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  // At the cap is still fine.
  auto ok = EncodeFrame(std::string_view(big.data(), kMaxFrameBytes));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), kMaxFrameBytes + 4);
}

TEST(FramingTest, SendFrameRejectsOversizedPayloadWithoutWriting) {
  auto [client, server] = CreateInProcessPipe();
  const std::string big(kMaxFrameBytes + 1, 'x');
  EXPECT_EQ(SendFrame(client.get(), big).code(),
            StatusCode::kInvalidArgument);
  // Nothing hit the wire: a good frame sent next is the first thing read.
  ASSERT_TRUE(SendFrame(client.get(), "after").ok());
  auto got = ReadFrame(server.get());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "after");
}

TEST(FramingTest, ManySmallPipelinedFramesInOneAppend) {
  // A burst of pipelined frames landing in a single read: the parser must
  // consume them with an offset cursor (erase(0, ...) per frame is
  // quadratic in the burst size) and yield every payload in order.
  constexpr int kFrames = 20000;
  std::string wire;
  for (int i = 0; i < kFrames; ++i) {
    wire += EncodeFrame(std::to_string(i)).value();
  }
  FrameParser parser;
  ASSERT_TRUE(parser.Append(wire.data(), wire.size()).ok());
  std::string payload;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(parser.Next(&payload)) << "frame " << i;
    EXPECT_EQ(payload, std::to_string(i));
  }
  EXPECT_FALSE(parser.Next(&payload));
  EXPECT_FALSE(parser.MidFrame());
}

TEST(FramingTest, CursorCompactionPreservesPartialFrames) {
  // A >= 64 KiB burst followed by a *partial* trailing frame in the same
  // Append: the consumed prefix is compacted away while unconsumed bytes
  // are still pending, which must not corrupt or lose them.
  const std::string filler(8 * 1024, 'f');
  std::string wire;
  for (int i = 0; i < 20; ++i) wire += EncodeFrame(filler).value();
  const std::string tail = EncodeFrame("tail").value();
  wire.append(tail.data(), tail.size() - 2);
  FrameParser parser;
  ASSERT_TRUE(parser.Append(wire.data(), wire.size()).ok());
  std::string payload;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(parser.Next(&payload)) << "frame " << i;
    EXPECT_EQ(payload, filler);
  }
  EXPECT_FALSE(parser.Next(&payload));
  EXPECT_TRUE(parser.MidFrame());
  ASSERT_TRUE(parser.Append(tail.data() + tail.size() - 2, 2).ok());
  ASSERT_TRUE(parser.Next(&payload));
  EXPECT_EQ(payload, "tail");
  EXPECT_FALSE(parser.MidFrame());
}

TEST(FramingTest, OversizedLengthIsStickyError) {
  // Length prefix far beyond kMaxFrameBytes.
  const char bad[4] = {'\x7f', '\x00', '\x00', '\x00'};
  FrameParser parser;
  Status s = parser.Append(bad, 4);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Sticky: further appends keep failing rather than resyncing on garbage.
  EXPECT_FALSE(parser.Append("x", 1).ok());
}

TEST(FramingTest, ReadFrameOverPipeRoundTrips) {
  auto [client, server] = CreateInProcessPipe();
  ASSERT_TRUE(SendFrame(client.get(), "ping").ok());
  auto got = ReadFrame(server.get());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), "ping");
}

TEST(FramingTest, ReadFrameReportsCleanEofAsNotFound) {
  auto [client, server] = CreateInProcessPipe();
  client->Close();
  auto got = ReadFrame(server.get());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(FramingTest, ReadFrameReportsTruncationAsCorruption) {
  auto [client, server] = CreateInProcessPipe();
  const std::string frame = EncodeFrame("truncated").value();
  // Send the prefix plus half the payload, then hang up.
  ASSERT_TRUE(client->Write(frame.data(), frame.size() - 4));
  client->Close();
  auto got = ReadFrame(server.get());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(FramingTest, PipeBlocksUntilDataArrives) {
  auto [client, server] = CreateInProcessPipe();
  std::thread writer([conn = client.get()] {
    ASSERT_TRUE(SendFrame(conn, "late").ok());
  });
  auto got = ReadFrame(server.get());
  writer.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "late");
}

TEST(FramingTest, ShutdownReadUnblocksReader) {
  auto [client, server] = CreateInProcessPipe();
  std::thread reader([conn = server.get()] {
    auto got = ReadFrame(conn);
    EXPECT_FALSE(got.ok());
  });
  server->ShutdownRead();
  reader.join();
}

}  // namespace
}  // namespace mrs
