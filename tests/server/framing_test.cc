#include "server/framing.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace mrs {
namespace {

TEST(FramingTest, EncodeProducesBigEndianPrefix) {
  const std::string frame = EncodeFrame("abc");
  ASSERT_EQ(frame.size(), 7u);
  EXPECT_EQ(static_cast<unsigned char>(frame[0]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(frame[1]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(frame[2]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(frame[3]), 3u);
  EXPECT_EQ(frame.substr(4), "abc");
}

TEST(FramingTest, ParserRoundTripsMultipleFrames) {
  std::string wire = EncodeFrame("first") + EncodeFrame("") +
                     EncodeFrame(std::string(1000, 'x'));
  FrameParser parser;
  ASSERT_TRUE(parser.Append(wire.data(), wire.size()).ok());
  std::string payload;
  ASSERT_TRUE(parser.Next(&payload));
  EXPECT_EQ(payload, "first");
  ASSERT_TRUE(parser.Next(&payload));
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(parser.Next(&payload));
  EXPECT_EQ(payload, std::string(1000, 'x'));
  EXPECT_FALSE(parser.Next(&payload));
  EXPECT_FALSE(parser.MidFrame());
}

TEST(FramingTest, ParserHandlesByteAtATimeDelivery) {
  const std::string wire = EncodeFrame("hello") + EncodeFrame("world");
  FrameParser parser;
  std::vector<std::string> got;
  for (char c : wire) {
    ASSERT_TRUE(parser.Append(&c, 1).ok());
    std::string payload;
    while (parser.Next(&payload)) got.push_back(payload);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "hello");
  EXPECT_EQ(got[1], "world");
}

TEST(FramingTest, OversizedLengthIsStickyError) {
  // Length prefix far beyond kMaxFrameBytes.
  const char bad[4] = {'\x7f', '\x00', '\x00', '\x00'};
  FrameParser parser;
  Status s = parser.Append(bad, 4);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Sticky: further appends keep failing rather than resyncing on garbage.
  EXPECT_FALSE(parser.Append("x", 1).ok());
}

TEST(FramingTest, ReadFrameOverPipeRoundTrips) {
  auto [client, server] = CreateInProcessPipe();
  ASSERT_TRUE(SendFrame(client.get(), "ping").ok());
  auto got = ReadFrame(server.get());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), "ping");
}

TEST(FramingTest, ReadFrameReportsCleanEofAsNotFound) {
  auto [client, server] = CreateInProcessPipe();
  client->Close();
  auto got = ReadFrame(server.get());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(FramingTest, ReadFrameReportsTruncationAsCorruption) {
  auto [client, server] = CreateInProcessPipe();
  const std::string frame = EncodeFrame("truncated");
  // Send the prefix plus half the payload, then hang up.
  ASSERT_TRUE(client->Write(frame.data(), frame.size() - 4));
  client->Close();
  auto got = ReadFrame(server.get());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(FramingTest, PipeBlocksUntilDataArrives) {
  auto [client, server] = CreateInProcessPipe();
  std::thread writer([conn = client.get()] {
    ASSERT_TRUE(SendFrame(conn, "late").ok());
  });
  auto got = ReadFrame(server.get());
  writer.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "late");
}

TEST(FramingTest, ShutdownReadUnblocksReader) {
  auto [client, server] = CreateInProcessPipe();
  std::thread reader([conn = server.get()] {
    auto got = ReadFrame(conn);
    EXPECT_FALSE(got.ok());
  });
  server->ShutdownRead();
  reader.join();
}

}  // namespace
}  // namespace mrs
