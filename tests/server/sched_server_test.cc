#include "server/sched_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/tree_schedule.h"
#include "io/plan_text.h"
#include "io/schedule_export.h"
#include "server/sched_client.h"
#include "server/sched_service.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::MakeFixture;
using testing_util::PlanFixture;

PlanFixture SingleJoinFixture(int64_t outer, int64_t inner) {
  return MakeFixture({outer, inner}, [](PlanTree* plan) {
    plan->AddJoin(plan->AddLeaf(0).value(), plan->AddLeaf(1).value()).value();
  });
}

std::string PlanTextOf(const PlanFixture& fx) {
  auto text = WritePlanText(*fx.catalog, *fx.plan);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  return std::move(text).value();
}

/// The "schedule" object embedded in an ok response.
std::string ScheduleJsonOf(const std::string& response) {
  const std::string key = "\"schedule\":";
  const size_t pos = response.find(key);
  EXPECT_NE(pos, std::string::npos) << response;
  if (pos == std::string::npos) return "";
  // The schedule object is the last field: strip the enclosing '}'.
  return response.substr(pos + key.size(),
                         response.size() - pos - key.size() - 1);
}

bool HasStatus(const std::string& response, const std::string& status) {
  return response.find("\"status\":\"" + status + "\"") != std::string::npos;
}

TEST(SchedServerTest, ConcurrentClientsGetOfflineByteIdenticalSchedules) {
  PlanFixture fx = SingleJoinFixture(6000, 3000);
  const std::string request = PlanTextOf(fx);

  OverlapUsageModel usage(0.5);
  auto offline = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                              MachineConfig{}, usage);
  ASSERT_TRUE(offline.ok());
  const std::string offline_json = TreeScheduleToJson(offline.value());

  SchedServiceOptions options;
  MetricsRegistry metrics;
  options.online.metrics = &metrics;
  // One query at a time: each admission happens on a drained machine, so
  // every response must embed the exact offline schedule.
  options.online.admission.max_in_flight = 1;
  SchedService service(options);
  SchedServer server(&service);

  constexpr int kClients = 4;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> client_threads;
  std::vector<std::thread> server_threads;
  std::vector<std::unique_ptr<Connection>> server_ends;
  for (int i = 0; i < kClients; ++i) {
    auto [client_end, server_end] = CreateInProcessPipe();
    server_ends.push_back(std::move(server_end));
    server_threads.emplace_back(
        [&server, conn = server_ends.back().get()] {
          server.ServeConnection(conn);
        });
    client_threads.emplace_back(
        [&request, &responses, i, conn = std::move(client_end)]() mutable {
          SchedClient client(std::move(conn));
          auto response = client.Call(request);
          ASSERT_TRUE(response.ok()) << response.status().ToString();
          responses[i] = std::move(response).value();
          client.Close();
        });
  }
  for (auto& t : client_threads) t.join();
  for (auto& t : server_threads) t.join();
  server.Shutdown();

  for (const std::string& response : responses) {
    ASSERT_TRUE(HasStatus(response, "ok")) << response;
    EXPECT_EQ(ScheduleJsonOf(response), offline_json);
  }
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("online.submitted"), 4u);
  EXPECT_EQ(snap.CounterValue("online.admitted"), 4u);
}

TEST(SchedServerTest, UnderLoadEveryRequestIsAccountedFor) {
  PlanFixture fx = SingleJoinFixture(20000, 10000);
  const std::string plan_text = PlanTextOf(fx);

  SchedServiceOptions options;
  MetricsRegistry metrics;
  options.online.metrics = &metrics;
  options.online.admission.max_in_flight = 1;
  options.online.admission.max_queue_depth = 2;
  SchedService service(options);
  SchedServer server(&service);

  // A tight timeout forces queue expiries; a depth of 2 forces rejects.
  constexpr int kClients = 8;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> client_threads;
  std::vector<std::thread> server_threads;
  std::vector<std::unique_ptr<Connection>> server_ends;
  for (int i = 0; i < kClients; ++i) {
    auto [client_end, server_end] = CreateInProcessPipe();
    server_ends.push_back(std::move(server_end));
    server_threads.emplace_back(
        [&server, conn = server_ends.back().get()] {
          server.ServeConnection(conn);
        });
    const std::string request = "@timeout 0.5\n" + plan_text;
    client_threads.emplace_back(
        [request, &responses, i, conn = std::move(client_end)]() mutable {
          SchedClient client(std::move(conn));
          auto response = client.Call(request);
          ASSERT_TRUE(response.ok()) << response.status().ToString();
          responses[i] = std::move(response).value();
          client.Close();
        });
  }
  for (auto& t : client_threads) t.join();
  for (auto& t : server_threads) t.join();
  server.Shutdown();
  ASSERT_TRUE(service.scheduler()->Drain().ok());

  int ok = 0, rejected = 0, timeout = 0;
  for (const std::string& response : responses) {
    if (HasStatus(response, "ok")) ++ok;
    if (HasStatus(response, "rejected")) ++rejected;
    if (HasStatus(response, "timeout")) ++timeout;
  }
  EXPECT_EQ(ok + rejected + timeout, kClients);

  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("online.submitted"),
            static_cast<uint64_t>(kClients));
  EXPECT_EQ(snap.CounterValue("online.admitted") +
                snap.CounterValue("online.rejected") +
                snap.CounterValue("online.timeout"),
            static_cast<uint64_t>(kClients));
  ASSERT_TRUE(service.scheduler()->CheckInvariants().ok());
}

TEST(SchedServerTest, MalformedRequestsYieldErrorResponses) {
  SchedServiceOptions options;
  MetricsRegistry metrics;
  options.online.metrics = &metrics;
  SchedService service(options);

  std::string response = service.Handle("this is not a plan");
  EXPECT_TRUE(HasStatus(response, "error")) << response;
  EXPECT_NE(response.find("\"code\":\"InvalidArgument\""), std::string::npos);

  response = service.Handle("@arrival nonsense\nrelation r 10\nplan (scan r)");
  EXPECT_TRUE(HasStatus(response, "error")) << response;

  response = service.Handle("@frobnicate 1\nrelation r 10\nplan (scan r)");
  EXPECT_TRUE(HasStatus(response, "error")) << response;
}

TEST(SchedServerTest, ArrivalDirectiveSetsVirtualTime) {
  PlanFixture fx = SingleJoinFixture(4000, 2000);
  SchedServiceOptions options;
  MetricsRegistry metrics;
  options.online.metrics = &metrics;
  SchedService service(options);
  const std::string response =
      service.Handle("@arrival 123.5\n" + PlanTextOf(fx));
  ASSERT_TRUE(HasStatus(response, "ok")) << response;
  EXPECT_NE(response.find("\"arrival_ms\":123.500000"), std::string::npos)
      << response;
}

TEST(SchedServerTest, ShutdownDrainsInFlightRequests) {
  PlanFixture fx = SingleJoinFixture(6000, 3000);
  const std::string request = PlanTextOf(fx);

  SchedServiceOptions options;
  MetricsRegistry metrics;
  options.online.metrics = &metrics;
  SchedService service(options);
  auto server = std::make_unique<SchedServer>(&service);

  auto [client_end, server_end] = CreateInProcessPipe();
  std::thread server_thread(
      [srv = server.get(), conn = server_end.get()] {
        srv->ServeConnection(conn);
      });

  SchedClient client(std::move(client_end));
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(HasStatus(response.value(), "ok"));

  // Shutdown with the connection still open: the serve loop must wind
  // down without the client hanging up first.
  std::thread shutdown_thread([srv = server.get()] { srv->Shutdown(); });
  server_thread.join();
  shutdown_thread.join();

  // The caller of ServeConnection owns the endpoint; close it like the
  // accept loop would, then a late call fails cleanly instead of hanging.
  server_end->Close();
  auto late = client.Call(request);
  EXPECT_FALSE(late.ok());
  server.reset();
}

TEST(SchedServerTest, TcpLoopbackRoundTrip) {
  PlanFixture fx = SingleJoinFixture(5000, 2500);
  const std::string request = PlanTextOf(fx);

  SchedServiceOptions options;
  MetricsRegistry metrics;
  options.online.metrics = &metrics;
  SchedService service(options);
  SchedServer server(&service);
  Status started = server.Start("127.0.0.1", 0);
  ASSERT_TRUE(started.ok()) << started.ToString();
  ASSERT_GT(server.port(), 0);

  auto client = SchedClient::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto response = client.value().Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(HasStatus(response.value(), "ok")) << response.value();
  client.value().Close();
  server.Shutdown();
}

}  // namespace
}  // namespace mrs
