// Unit tests for the barrier-free moldable list scheduler (LISTSCHEDULE):
// precedence edges are respected on the shared timeline, no site is ever
// oversubscribed in any event window, degrees stay within the moldable
// bounds, the engine is deterministic, and the Schedule generalization it
// rides on (per-clone start times) leaves aligned schedules byte-identical.

#include "core/list_schedule.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/tree_schedule.h"
#include "cost/parallelize.h"
#include "exec/fluid_simulator.h"
#include "io/schedule_export.h"
#include "resource/usage_model.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::MakeFixture;
using testing_util::MakeOp;
using testing_util::PipelinedChainFixture;
using testing_util::PlanFixture;

MachineConfig Machine(int sites) {
  MachineConfig m;
  m.num_sites = sites;
  return m;
}

/// Runs LISTSCHEDULE on a fixture; asserts success.
ListScheduleResult RunList(const PlanFixture& fx, int sites,
                       const ListScheduleOptions& options = {},
                       double eps = 0.5) {
  OverlapUsageModel usage(eps);
  auto result = ListSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(sites), usage, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Maps op id -> task id for a fixture.
std::vector<int> OpTask(const PlanFixture& fx) {
  std::vector<int> op_task(static_cast<size_t>(fx.op_tree.num_ops()), -1);
  for (const QueryTask& task : fx.task_tree.tasks()) {
    for (int oid : task.ops) op_task[static_cast<size_t>(oid)] = task.id;
  }
  return op_task;
}

TEST(ListScheduleTest, SingleScanPlanMatchesTree) {
  PlanFixture fx = testing_util::MakeFixture(
      {5000}, [](PlanTree* plan) { plan->AddLeaf(0).value(); });
  OverlapUsageModel usage(0.5);
  auto tree = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           Machine(8), usage);
  ASSERT_TRUE(tree.ok());
  ListScheduleResult list = RunList(fx, 8);
  // One task, one round: the list schedule *is* the tree's single phase.
  EXPECT_EQ(list.rounds, 1);
  EXPECT_NEAR(list.makespan, tree->response_time, 1e-9);
  EXPECT_FALSE(list.used_tree_fallback);
}

TEST(ListScheduleTest, PrecedenceRespected) {
  PlanFixture fx = BushyFourWayFixture();
  ListScheduleResult result = RunList(fx, 12);
  const std::vector<int> op_task = OpTask(fx);

  // Task edges: a task starts no earlier than every child task finishes
  // (finish > start for any task with work).
  for (const QueryTask& task : fx.task_tree.tasks()) {
    const ListTaskInterval& interval =
        result.tasks[static_cast<size_t>(task.id)];
    EXPECT_EQ(interval.task, task.id);
    EXPECT_GT(interval.finish, interval.start);
    for (int child : task.children) {
      EXPECT_GE(interval.start,
                result.tasks[static_cast<size_t>(child)].finish - 1e-9)
          << "task " << task.id << " started before child " << child;
    }
  }
  // Clone starts: every clone starts exactly at its task's readiness
  // instant, and finishes within the task's interval.
  const auto& placements = result.schedule.placements();
  for (size_t p = 0; p < placements.size(); ++p) {
    const int tid = op_task[static_cast<size_t>(placements[p].op_id)];
    const ListTaskInterval& interval = result.tasks[static_cast<size_t>(tid)];
    EXPECT_DOUBLE_EQ(placements[p].start, interval.start);
    EXPECT_LE(result.clone_finish[p], interval.finish + 1e-9);
  }
}

TEST(ListScheduleTest, NoSiteOversubscribedInAnyEventWindow) {
  PlanFixture fx = PipelinedChainFixture(6);
  ListScheduleResult result = RunList(fx, 6);
  const Schedule& s = result.schedule;

  // Fluid feasibility (unit capacity per resource): for every window
  // [u, v] between event points of a site, the clones executed *entirely*
  // inside the window demand at most (v - u) on each resource.
  for (int j = 0; j < s.num_sites(); ++j) {
    std::vector<double> events{0.0};
    for (int p : s.SitePlacements(j)) {
      events.push_back(s.placements()[static_cast<size_t>(p)].start);
      events.push_back(result.clone_finish[static_cast<size_t>(p)]);
    }
    std::sort(events.begin(), events.end());
    for (size_t a = 0; a < events.size(); ++a) {
      for (size_t b = a + 1; b < events.size(); ++b) {
        const double u = events[a];
        const double v = events[b];
        if (v <= u) continue;
        WorkVector contained(static_cast<size_t>(s.dims()));
        for (int p : s.SitePlacements(j)) {
          const ClonePlacement& c = s.placements()[static_cast<size_t>(p)];
          if (c.start >= u &&
              result.clone_finish[static_cast<size_t>(p)] <= v + 1e-9) {
            contained += c.work;
          }
        }
        for (size_t i = 0; i < contained.dim(); ++i) {
          EXPECT_LE(contained[i], (v - u) + 1e-6)
              << "site " << j << " oversubscribed on resource " << i
              << " in [" << u << ", " << v << "]";
        }
      }
    }
  }
}

TEST(ListScheduleTest, DegreesWithinMoldableBounds) {
  PlanFixture fx = BushyFourWayFixture({60000, 45000, 70000, 30000});
  const int sites = 10;
  ListScheduleOptions options;
  options.granularity = 0.5;
  ListScheduleResult result = RunList(fx, sites, options);
  ASSERT_EQ(static_cast<int>(result.ops.size()), fx.op_tree.num_ops());
  for (const ParallelizedOp& op : result.ops) {
    EXPECT_GE(op.degree, 1);
    EXPECT_LE(op.degree, sites);
    if (!op.rooted) {
      // Floating degrees respect the CG_f cap N_max (Prop. 4.1). The cap
      // is computed from the op's own cost; join-aware sizing only ever
      // *lowers* the chosen degree below this.
      const OperatorCost& cost =
          fx.costs[static_cast<size_t>(op.op_id)];
      const int n_max = MaxCoarseGrainDegree(
          cost.processing.Total(), cost.data_bytes, CostParams{},
          options.granularity);
      EXPECT_LE(op.degree, std::max(n_max, 1)) << "op " << op.op_id;
    }
  }
}

TEST(ListScheduleTest, ScheduleValidatesAndCoversEveryOperator) {
  PlanFixture fx = BushyFourWayFixture();
  ListScheduleResult result = RunList(fx, 9);
  EXPECT_TRUE(result.schedule.Validate(result.ops).ok());
  std::vector<int> seen;
  for (const ParallelizedOp& op : result.ops) seen.push_back(op.op_id);
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(static_cast<int>(seen.size()), fx.op_tree.num_ops());
  for (int i = 0; i < fx.op_tree.num_ops(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(ListScheduleTest, ProbeRootedAtBuildHome) {
  PlanFixture fx = BushyFourWayFixture();
  ListScheduleResult result = RunList(fx, 8);
  for (const PhysicalOp& op : fx.op_tree.ops()) {
    if (op.blocking_input < 0) continue;
    const std::vector<int> own = result.HomeOf(op.id);
    const std::vector<int> producer = result.HomeOf(op.blocking_input);
    ASSERT_FALSE(own.empty());
    EXPECT_EQ(own, producer) << "op " << op.id;
  }
}

TEST(ListScheduleTest, NeverWorseThanTreeWithGuard) {
  for (int sites : {2, 5, 16, 48}) {
    PlanFixture fx = PipelinedChainFixture(5);
    OverlapUsageModel usage(0.5);
    auto tree = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(sites), usage);
    ASSERT_TRUE(tree.ok());
    ListScheduleResult list = RunList(fx, sites);
    EXPECT_LE(list.makespan, tree->response_time + 1e-9) << sites << " sites";
    EXPECT_NEAR(list.tree_response_time, tree->response_time, 1e-9);
  }
}

TEST(ListScheduleTest, FallbackMakespanEqualsTreeResponse) {
  // Whenever the guard fires, the emitted schedule is the tree replayed on
  // the shared timeline, so its evaluated makespan is exactly the tree's
  // response time — and the schedule still validates.
  for (int sites : {2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    PlanFixture fx = BushyFourWayFixture({90000, 80000, 85000, 70000});
    ListScheduleResult list = RunList(fx, sites);
    // Whether the guard fires is plan-dependent; when it does, the result
    // must be the tree bit-exactly.
    if (!list.used_tree_fallback) continue;
    EXPECT_NEAR(list.makespan, list.tree_response_time, 1e-9);
    EXPECT_TRUE(list.schedule.Validate(list.ops).ok());
  }
}

TEST(ListScheduleTest, GuardOffCanLoseToTreeButStillValid) {
  ListScheduleOptions options;
  options.tree_guard = false;
  PlanFixture fx = BushyFourWayFixture();
  ListScheduleResult list = RunList(fx, 8, options);
  EXPECT_FALSE(list.used_tree_fallback);
  EXPECT_DOUBLE_EQ(list.tree_response_time, 0.0);
  EXPECT_TRUE(list.schedule.Validate(list.ops).ok());
  EXPECT_GT(list.makespan, 0.0);
}

TEST(ListScheduleTest, MakespanMatchesScheduleSweep) {
  // The engine's event loop and Schedule's authoritative SweepSiteFinish
  // must tell the same story: same makespan, same per-clone finishes.
  for (int sites : {3, 8, 20}) {
    PlanFixture fx = PipelinedChainFixture(4);
    ListScheduleOptions options;
    options.tree_guard = false;  // compare the greedy schedule itself
    ListScheduleResult list = RunList(fx, sites, options);
    EXPECT_NEAR(list.makespan, list.schedule.Makespan(), 1e-6);
    const std::vector<double> swept = list.schedule.CloneFinishTimes();
    ASSERT_EQ(swept.size(), list.clone_finish.size());
    for (size_t p = 0; p < swept.size(); ++p) {
      EXPECT_NEAR(swept[p], list.clone_finish[p], 1e-6) << "clone " << p;
    }
  }
}

TEST(ListScheduleTest, SimulateTimedRealizesTheSchedule) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  ListScheduleOptions options;
  options.tree_guard = false;
  auto list = ListSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           Machine(7), usage, options);
  ASSERT_TRUE(list.ok());
  FluidSimulator sim(usage);
  auto simulated = sim.SimulateTimed(list->schedule);
  ASSERT_TRUE(simulated.ok()) << simulated.status().ToString();
  EXPECT_NEAR(simulated->makespan, list->makespan,
              1e-6 * std::max(1.0, list->makespan));
  ASSERT_EQ(simulated->clone_finish.size(), list->clone_finish.size());
  for (size_t p = 0; p < simulated->clone_finish.size(); ++p) {
    EXPECT_NEAR(simulated->clone_finish[p], list->clone_finish[p],
                1e-6 * std::max(1.0, list->clone_finish[p]));
  }
}

TEST(ListScheduleTest, DeterministicAcrossConcurrentCallers) {
  PlanFixture fx = BushyFourWayFixture();
  const std::string reference = ListScheduleToJson(RunList(fx, 11));
  constexpr int kThreads = 4;
  std::vector<std::string> outputs(kThreads);
  std::vector<std::thread> workers;
  for (int k = 0; k < kThreads; ++k) {
    workers.emplace_back([&, k] {
      PlanFixture local = BushyFourWayFixture();
      outputs[static_cast<size_t>(k)] =
          ListScheduleToJson(RunList(local, 11));
    });
  }
  for (auto& w : workers) w.join();
  for (const std::string& out : outputs) EXPECT_EQ(out, reference);
}

TEST(ListScheduleTest, MalleablePolicyProducesValidSchedules) {
  ListScheduleOptions options;
  options.policy = ParallelizationPolicy::kMalleable;
  PlanFixture fx = BushyFourWayFixture();
  ListScheduleResult list = RunList(fx, 10, options);
  EXPECT_TRUE(list.schedule.Validate(list.ops).ok());
  EXPECT_GT(list.makespan, 0.0);
  OverlapUsageModel usage(0.5);
  TreeScheduleOptions tree_options;
  tree_options.policy = ParallelizationPolicy::kMalleable;
  auto tree = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           Machine(10), usage, tree_options);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(list.makespan, tree->response_time + 1e-9);
}

TEST(ListScheduleTest, RejectsMismatchedCosts) {
  PlanFixture fx = BushyFourWayFixture();
  std::vector<OperatorCost> wrong(fx.costs.begin(), fx.costs.end() - 1);
  OverlapUsageModel usage(0.5);
  auto result = ListSchedule(fx.op_tree, fx.task_tree, wrong, CostParams{},
                             Machine(8), usage);
  EXPECT_FALSE(result.ok());
}

TEST(ListScheduleTest, SingleSiteMachineWorks) {
  PlanFixture fx = PipelinedChainFixture(3);
  ListScheduleResult list = RunList(fx, 1);
  EXPECT_TRUE(list.schedule.Validate(list.ops).ok());
  for (const ParallelizedOp& op : list.ops) EXPECT_EQ(op.degree, 1);
}

// --- External base load: the two threading points agree and cannot be
// set together. ---

TEST(ListScheduleTest, BaseLoadInBothFieldsIsRejected) {
  PlanFixture fx = BushyFourWayFixture();
  MachineConfig machine = Machine(6);
  std::vector<WorkVector> load(
      static_cast<size_t>(machine.num_sites),
      WorkVector(static_cast<size_t>(machine.dims)));
  OverlapUsageModel usage(0.5);
  ListScheduleOptions options;
  options.base_load = &load;
  options.list_options.base_load = &load;
  auto result = ListSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             machine, usage, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ListScheduleTest, ListOptionsBaseLoadMatchesTopLevelBaseLoad) {
  // list_options.base_load is honored identically to the top-level field:
  // same placements, same makespan, byte-identical JSON.
  PlanFixture fx = BushyFourWayFixture();
  MachineConfig machine = Machine(6);
  std::vector<WorkVector> load(
      static_cast<size_t>(machine.num_sites),
      WorkVector(static_cast<size_t>(machine.dims)));
  load[0] = WorkVector({50.0, 20.0, 10.0});
  load[1] = WorkVector({40.0, 25.0, 5.0});
  OverlapUsageModel usage(0.5);

  ListScheduleOptions top;
  top.base_load = &load;
  auto via_top = ListSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                              machine, usage, top);
  ASSERT_TRUE(via_top.ok()) << via_top.status().ToString();

  ListScheduleOptions nested;
  nested.list_options.base_load = &load;
  auto via_nested = ListSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                 CostParams{}, machine, usage, nested);
  ASSERT_TRUE(via_nested.ok()) << via_nested.status().ToString();

  EXPECT_EQ(ListScheduleToJson(*via_top), ListScheduleToJson(*via_nested));
  EXPECT_DOUBLE_EQ(via_top->makespan, via_nested->makespan);
}

// --- Pipelined mode: rate matching + co-residency under the guard. ---

TEST(ListScheduleTest, PipelinedNeverLosesToTaskWaveList) {
  for (int sites : {2, 4, 8, 16, 32}) {
    for (int joins : {2, 4, 6}) {
      PlanFixture fx = PipelinedChainFixture(joins);
      ListScheduleResult plain = RunList(fx, sites);
      ListScheduleOptions options;
      options.pipeline = true;
      ListScheduleResult piped = RunList(fx, sites, options);
      // Exactly one of pipelined/wave-fallback: the guard may legally
      // fall back where the stage split packs worse than the wave.
      EXPECT_NE(piped.pipelined, piped.used_list_fallback)
          << sites << " sites, " << joins << " joins";
      EXPECT_LE(piped.makespan, plain.makespan + 1e-9)
          << sites << " sites, " << joins << " joins";
      EXPECT_NEAR(piped.list_makespan, plain.makespan, 1e-9);
      EXPECT_TRUE(piped.schedule.Validate(piped.ops).ok());
    }
  }
}

TEST(ListScheduleTest, PipelinedConsumerStartsWithItsProducer) {
  // Over every pipelined data edge, the consumer's earliest clone start
  // is never before the producer's (equality is the point: co-residency
  // from the first instant of the round).
  PlanFixture fx = PipelinedChainFixture(5);
  ListScheduleOptions options;
  options.pipeline = true;
  ListScheduleResult piped = RunList(fx, 12, options);
  std::vector<double> first_start(
      static_cast<size_t>(fx.op_tree.num_ops()),
      std::numeric_limits<double>::infinity());
  for (const ClonePlacement& p : piped.schedule.placements()) {
    first_start[static_cast<size_t>(p.op_id)] =
        std::min(first_start[static_cast<size_t>(p.op_id)], p.start);
  }
  for (const PhysicalOp& op : fx.op_tree.ops()) {
    for (int d : op.data_inputs) {
      EXPECT_GE(first_start[static_cast<size_t>(op.id)],
                first_start[static_cast<size_t>(d)] - 1e-9)
          << "op" << op.id << " starts before its producer op" << d;
    }
  }
}

TEST(ListScheduleTest, PipelineGuardOffStillValid) {
  ListScheduleOptions options;
  options.pipeline = true;
  options.pipeline_guard = false;
  options.tree_guard = false;
  PlanFixture fx = BushyFourWayFixture();
  ListScheduleResult piped = RunList(fx, 8, options);
  EXPECT_TRUE(piped.pipelined);
  EXPECT_FALSE(piped.used_list_fallback);
  EXPECT_TRUE(piped.schedule.Validate(piped.ops).ok());
  EXPECT_GT(piped.makespan, 0.0);
}

TEST(ListScheduleTest, PipelinedSimulateTimedAgrees) {
  // Overlapping producer/consumer residency runs through the same fluid
  // discipline: SimulateTimed must realize the pipelined schedule too.
  PlanFixture fx = PipelinedChainFixture(4);
  OverlapUsageModel usage(0.5);
  ListScheduleOptions options;
  options.pipeline = true;
  auto piped = ListSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                            Machine(9), usage, options);
  ASSERT_TRUE(piped.ok());
  FluidSimulator sim(usage);
  auto simulated = sim.SimulateTimed(piped->schedule);
  ASSERT_TRUE(simulated.ok()) << simulated.status().ToString();
  EXPECT_NEAR(simulated->makespan, piped->makespan,
              1e-6 * std::max(1.0, piped->makespan));
  ASSERT_EQ(simulated->clone_finish.size(), piped->clone_finish.size());
  for (size_t p = 0; p < simulated->clone_finish.size(); ++p) {
    EXPECT_NEAR(simulated->clone_finish[p], piped->clone_finish[p],
                1e-6 * std::max(1.0, piped->clone_finish[p]));
  }
}

// --- d > WorkVector::kInlineDims: the heap storage path agrees with the
// engines and the simulator just like the inline path. ---

TEST(ListScheduleTest, HighDimensionalHeapPathAgrees) {
  // d = 12 > kInlineDims = 8 puts every work vector on the heap; the
  // same invariants that hold at d = 3 must hold bit-for-bit here.
  constexpr int kDisks = 10;  // dims = 2 + 10 = 12
  for (int sites : {3, 8, 20}) {
    PlanFixture fx = BushyFourWayFixture();
    MachineConfig machine = MachineConfig::WithDisks(sites, kDisks);
    CostModel model(CostParams{}, machine.dims, kDisks);
    auto costs = model.CostAll(fx.op_tree);
    ASSERT_TRUE(costs.ok()) << costs.status().ToString();
    OverlapUsageModel usage(0.5);

    auto tree = TreeSchedule(fx.op_tree, fx.task_tree, costs.value(),
                             CostParams{}, machine, usage);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    auto list = ListSchedule(fx.op_tree, fx.task_tree, costs.value(),
                             CostParams{}, machine, usage);
    ASSERT_TRUE(list.ok()) << list.status().ToString();
    EXPECT_LE(list->makespan, tree->response_time + 1e-9) << sites;
    EXPECT_TRUE(list->schedule.Validate(list->ops).ok());
    EXPECT_EQ(list->schedule.dims(), 2 + kDisks);

    // Event loop vs the authoritative sweep vs the simulator — three
    // independent fluid realizations over heap-backed vectors.
    EXPECT_NEAR(list->makespan, list->schedule.Makespan(),
                1e-6 * std::max(1.0, list->makespan));
    FluidSimulator sim(usage);
    auto simulated = sim.SimulateTimed(list->schedule);
    ASSERT_TRUE(simulated.ok()) << simulated.status().ToString();
    EXPECT_NEAR(simulated->makespan, list->makespan,
                1e-6 * std::max(1.0, list->makespan));
    ASSERT_EQ(simulated->clone_finish.size(), list->clone_finish.size());
    for (size_t p = 0; p < simulated->clone_finish.size(); ++p) {
      EXPECT_NEAR(simulated->clone_finish[p], list->clone_finish[p],
                  1e-6 * std::max(1.0, list->clone_finish[p]));
    }

    // Pipelined mode rides the same heap path under its guard.
    ListScheduleOptions pipe;
    pipe.pipeline = true;
    auto piped = ListSchedule(fx.op_tree, fx.task_tree, costs.value(),
                              CostParams{}, machine, usage, pipe);
    ASSERT_TRUE(piped.ok()) << piped.status().ToString();
    EXPECT_LE(piped->makespan, list->makespan + 1e-9);
    EXPECT_TRUE(piped->schedule.Validate(piped->ops).ok());
  }
}

// --- Schedule generalization: aligned schedules stay byte-identical. ---

TEST(ScheduleStartTimeTest, PlaceAtZeroIsByteIdenticalToPlace) {
  OverlapUsageModel usage(0.5);
  ParallelizedOp a = MakeOp(0, {WorkVector({4, 1, 0}), WorkVector({3, 2, 0})},
                            usage);
  ParallelizedOp b = MakeOp(1, {WorkVector({2, 5, 1})}, usage);

  Schedule placed(3, 3);
  ASSERT_TRUE(placed.Place(a, 0, 0).ok());
  ASSERT_TRUE(placed.Place(a, 1, 1).ok());
  ASSERT_TRUE(placed.Place(b, 0, 0).ok());

  Schedule placed_at(3, 3);
  ASSERT_TRUE(placed_at.PlaceAt(a, 0, 0, 0.0).ok());
  ASSERT_TRUE(placed_at.PlaceAt(a, 1, 1, 0.0).ok());
  ASSERT_TRUE(placed_at.PlaceAt(b, 0, 0, 0.0).ok());

  EXPECT_TRUE(placed.aligned());
  EXPECT_TRUE(placed_at.aligned());
  EXPECT_EQ(placed.ToString(), placed_at.ToString());
  EXPECT_EQ(ScheduleToJson(placed), ScheduleToJson(placed_at));
  EXPECT_DOUBLE_EQ(placed.Makespan(), placed_at.Makespan());
  for (int j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(placed.SiteFinish(j), placed.SiteTime(j));
  }
}

TEST(ScheduleStartTimeTest, PositiveStartBreaksAlignment) {
  OverlapUsageModel usage(0.5);
  ParallelizedOp a = MakeOp(0, {WorkVector({4, 0, 0})}, usage);
  ParallelizedOp b = MakeOp(1, {WorkVector({2, 0, 0})}, usage);
  Schedule s(1, 3);
  ASSERT_TRUE(s.PlaceAt(a, 0, 0, 0.0).ok());
  EXPECT_TRUE(s.aligned());
  ASSERT_TRUE(s.PlaceAt(b, 0, 0, 4.0).ok());
  EXPECT_FALSE(s.aligned());
  // Two back-to-back waves: [0, 4) then [4, 6).
  EXPECT_DOUBLE_EQ(s.SiteFinish(0), 6.0);
  EXPECT_DOUBLE_EQ(s.Makespan(), 6.0);
  const std::vector<double> finish = s.CloneFinishTimes();
  EXPECT_DOUBLE_EQ(finish[0], 4.0);
  EXPECT_DOUBLE_EQ(finish[1], 6.0);
}

TEST(ScheduleStartTimeTest, RejectsNegativeStart) {
  OverlapUsageModel usage(0.5);
  ParallelizedOp a = MakeOp(0, {WorkVector({1, 0, 0})}, usage);
  Schedule s(1, 3);
  EXPECT_FALSE(s.PlaceAt(a, 0, 0, -1.0).ok());
}

TEST(ScheduleStartTimeTest, MidWaveArrivalStretchesResidents) {
  // One clone of 4ms CPU work running alone; at t=2 a second clone with
  // 4ms on an orthogonal resource arrives. Remaining work at t=2 is
  // (2, 0) + (0, 4): the common completion is 2 + max(2, 4) = 6, the
  // first clone stretched by its roommate's congestion-free overlap.
  OverlapUsageModel usage(1.0);  // full overlap: l(W) = max component
  ParallelizedOp a = MakeOp(0, {WorkVector({4, 0})}, usage);
  ParallelizedOp b = MakeOp(1, {WorkVector({0, 4})}, usage);
  Schedule s(1, 2);
  ASSERT_TRUE(s.PlaceAt(a, 0, 0, 0.0).ok());
  ASSERT_TRUE(s.PlaceAt(b, 0, 0, 2.0).ok());
  EXPECT_DOUBLE_EQ(s.SiteFinish(0), 6.0);
  const std::vector<double> finish = s.CloneFinishTimes();
  EXPECT_DOUBLE_EQ(finish[0], 6.0);
  EXPECT_DOUBLE_EQ(finish[1], 6.0);
}

}  // namespace
}  // namespace mrs
