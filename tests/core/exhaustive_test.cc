#include "core/exhaustive.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/operator_schedule.h"
#include "resource/usage_model.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::ListScheduleLowerBound;
using testing_util::MakeOp;
using testing_util::MakeUnitOp;

TEST(ExhaustiveTest, EmptyInstance) {
  auto result = ExhaustiveOptimalMakespan({}, 2, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->makespan, 0.0);
  EXPECT_TRUE(result->proven_optimal);
}

TEST(ExhaustiveTest, SingleOpIsItsParallelTime) {
  OverlapUsageModel usage(0.5);
  auto op = MakeUnitOp(0, {6.0, 2.0}, usage);
  auto result = ExhaustiveOptimalMakespan({op}, 3, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->makespan, op.t_par, 1e-12);
  EXPECT_TRUE(result->proven_optimal);
}

TEST(ExhaustiveTest, HandSolvableInstance) {
  // d=1, three unit ops of sizes 3, 3, 2 on 2 sites: optimum 4 is NOT
  // what naive largest-first gives if it must pack 3+2 (5); the optimal
  // packing is {3,?}: loads {3, 3+2=5}? No: {3,3} vs {2} -> 6/2.
  // Sizes 3,3,2 on 2 sites: best split {3,2} vs {3} -> makespan 5? or
  // {3,3} vs {2} -> 6. So optimum = 5.
  OverlapUsageModel usage(1.0);
  std::vector<ParallelizedOp> ops = {
      MakeUnitOp(0, WorkVector({3.0}), usage),
      MakeUnitOp(1, WorkVector({3.0}), usage),
      MakeUnitOp(2, WorkVector({2.0}), usage),
  };
  auto result = ExhaustiveOptimalMakespan(ops, 2, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->makespan, 5.0, 1e-12);
  EXPECT_TRUE(result->proven_optimal);
}

TEST(ExhaustiveTest, MultiDimensionalComplementaryPacking) {
  // Two CPU-heavy and two disk-heavy clones, 2 sites, perfect overlap:
  // optimum pairs complementary ops: makespan 8. Scalar pairing would
  // give 16 on one resource.
  OverlapUsageModel usage(1.0);
  std::vector<ParallelizedOp> ops = {
      MakeUnitOp(0, {8.0, 0.0}, usage),
      MakeUnitOp(1, {8.0, 0.0}, usage),
      MakeUnitOp(2, {0.0, 8.0}, usage),
      MakeUnitOp(3, {0.0, 8.0}, usage),
  };
  auto result = ExhaustiveOptimalMakespan(ops, 2, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->makespan, 8.0, 1e-12);
}

TEST(ExhaustiveTest, ConstraintAForcesSpread) {
  // One op with 2 clones and 2 sites: clones must go to different sites
  // even if one site would otherwise be preferable.
  OverlapUsageModel usage(1.0);
  auto op = MakeOp(0, {{4.0, 0.0}, {4.0, 0.0}}, usage);
  auto result = ExhaustiveOptimalMakespan({op}, 2, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->makespan, 4.0, 1e-12);
}

TEST(ExhaustiveTest, RootedPrePlacementRespected) {
  OverlapUsageModel usage(1.0);
  auto rooted = MakeOp(0, {{6.0, 0.0}}, usage, /*home=*/{0});
  auto floating = MakeUnitOp(1, {6.0, 0.0}, usage);
  auto result = ExhaustiveOptimalMakespan({rooted, floating}, 2, 2);
  ASSERT_TRUE(result.ok());
  // The floating op avoids site 0: both run in parallel -> 6.
  EXPECT_NEAR(result->makespan, 6.0, 1e-12);
}

TEST(ExhaustiveTest, NeverWorseThanListSchedule) {
  Rng rng(555);
  OverlapUsageModel usage(0.4);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ParallelizedOp> ops;
    const int m = 3 + static_cast<int>(rng.Index(4));
    for (int i = 0; i < m; ++i) {
      std::vector<WorkVector> clones;
      const int degree = 1 + static_cast<int>(rng.Index(2));
      for (int k = 0; k < degree; ++k) {
        clones.push_back(
            {rng.UniformDouble(0, 9), rng.UniformDouble(0, 9)});
      }
      ops.push_back(MakeOp(i, std::move(clones), usage));
    }
    auto list = OperatorSchedule(ops, 3, 2);
    auto exact = ExhaustiveOptimalMakespan(ops, 3, 2);
    ASSERT_TRUE(list.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(exact->makespan, list->Makespan() + 1e-9);
    EXPECT_GE(exact->makespan + 1e-9, ListScheduleLowerBound(ops, 3));
  }
}

TEST(ExhaustiveTest, NodeCapTripsGracefully) {
  OverlapUsageModel usage(0.5);
  std::vector<ParallelizedOp> ops;
  for (int i = 0; i < 12; ++i) {
    ops.push_back(MakeUnitOp(
        i, {1.0 + 0.1 * i, 2.0 - 0.1 * i}, usage));
  }
  ExhaustiveOptions options;
  options.max_nodes = 50;
  auto result = ExhaustiveOptimalMakespan(ops, 4, 2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->proven_optimal);
  // Still returns the list-schedule incumbent.
  auto list = OperatorSchedule(ops, 4, 2);
  ASSERT_TRUE(list.ok());
  EXPECT_LE(result->makespan, list->Makespan() + 1e-9);
}

TEST(ExhaustiveTest, RejectsBadSites) {
  EXPECT_FALSE(ExhaustiveOptimalMakespan({}, 0, 2).ok());
}

/// Fanning the root of the search across a thread pool explores the same
/// space: run to proof (no node budget), the pooled search returns the
/// same optimum as the sequential one on random instances.
TEST(ExhaustiveTest, PooledSearchMatchesSequential) {
  Rng rng(777);
  OverlapUsageModel usage(0.6);
  ThreadPool pool(4);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<ParallelizedOp> ops;
    const int m = 3 + static_cast<int>(rng.Index(4));
    for (int i = 0; i < m; ++i) {
      std::vector<WorkVector> clones;
      const int degree = 1 + static_cast<int>(rng.Index(2));
      for (int k = 0; k < degree; ++k) {
        clones.push_back(
            {rng.UniformDouble(0, 9), rng.UniformDouble(0, 9)});
      }
      // Root the occasional op (home size must equal the degree) to
      // exercise the pre-placed branch too.
      std::vector<int> home;
      if (i == 0 && rng.Bernoulli(0.5)) {
        for (int k = 0; k < static_cast<int>(clones.size()); ++k) {
          home.push_back(k);
        }
      }
      ops.push_back(MakeOp(i, std::move(clones), usage, home));
    }
    auto sequential = ExhaustiveOptimalMakespan(ops, 3, 2);
    ExhaustiveOptions options;
    options.pool = &pool;
    auto pooled = ExhaustiveOptimalMakespan(ops, 3, 2, options);
    ASSERT_TRUE(sequential.ok());
    ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
    EXPECT_TRUE(pooled->proven_optimal);
    EXPECT_NEAR(pooled->makespan, sequential->makespan, 1e-12)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace mrs
