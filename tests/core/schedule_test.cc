#include "core/schedule.h"

#include <gtest/gtest.h>

#include "resource/usage_model.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::MakeOp;
using testing_util::MakeUnitOp;

TEST(ScheduleTest, EmptySchedule) {
  Schedule s(4, 2);
  EXPECT_EQ(s.num_sites(), 4);
  EXPECT_EQ(s.dims(), 2);
  EXPECT_EQ(s.num_placements(), 0);
  EXPECT_DOUBLE_EQ(s.Makespan(), 0.0);
  for (int j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(s.SiteTime(j), 0.0);
    EXPECT_DOUBLE_EQ(s.SiteLoadLength(j), 0.0);
  }
}

TEST(ScheduleTest, PlaceAccumulatesLoad) {
  OverlapUsageModel usage(0.3);
  Schedule s(2, 2);
  auto op0 = MakeUnitOp(0, {10.0, 15.0}, usage);
  auto op1 = MakeUnitOp(1, {10.0, 5.0}, usage);
  ASSERT_TRUE(s.Place(op0, 0, 0).ok());
  ASSERT_TRUE(s.Place(op1, 0, 0).ok());
  EXPECT_EQ(s.SitePlacements(0).size(), 2u);
  EXPECT_EQ(s.SiteLoad(0), WorkVector({20.0, 20.0}));
  EXPECT_DOUBLE_EQ(s.SiteLoadLength(0), 20.0);
}

TEST(ScheduleTest, SiteTimeMatchesEquation2SqueezeCase) {
  // Paper §5.2.2: clones (22,[10,15]) and (10,[10,5]) at one site -> 22.
  OverlapUsageModel usage(0.3);
  Schedule s(1, 2);
  ASSERT_TRUE(s.Place(MakeUnitOp(0, {10.0, 15.0}, usage), 0, 0).ok());
  ASSERT_TRUE(s.Place(MakeUnitOp(1, {10.0, 5.0}, usage), 0, 0).ok());
  EXPECT_NEAR(s.SiteTime(0), 22.0, 1e-12);
  EXPECT_NEAR(s.Makespan(), 22.0, 1e-12);
}

TEST(ScheduleTest, SiteTimeMatchesEquation2CongestedCase) {
  // Paper §5.2.2: (22,[10,15]) with (10,[5,10]) -> resource 2 congests: 25.
  OverlapUsageModel usage(0.3);
  Schedule s(1, 2);
  ASSERT_TRUE(s.Place(MakeUnitOp(0, {10.0, 15.0}, usage), 0, 0).ok());
  ASSERT_TRUE(s.Place(MakeUnitOp(1, {5.0, 10.0}, usage), 0, 0).ok());
  EXPECT_NEAR(s.SiteTime(0), 25.0, 1e-12);
}

TEST(ScheduleTest, MakespanIsEquation3) {
  // Eq. (3): max over sites = max(slowest op T_par, busiest resource).
  OverlapUsageModel usage(1.0);  // T_seq = max component
  Schedule s(2, 2);
  ASSERT_TRUE(s.Place(MakeUnitOp(0, {8.0, 1.0}, usage), 0, 0).ok());
  ASSERT_TRUE(s.Place(MakeUnitOp(1, {2.0, 3.0}, usage), 0, 1).ok());
  EXPECT_DOUBLE_EQ(s.SiteTime(0), 8.0);
  EXPECT_DOUBLE_EQ(s.SiteTime(1), 3.0);
  EXPECT_DOUBLE_EQ(s.Makespan(), 8.0);
}

TEST(ScheduleTest, ConstraintARejectsSameOpTwicePerSite) {
  OverlapUsageModel usage(0.5);
  Schedule s(3, 2);
  auto op = MakeOp(5, {{1.0, 1.0}, {1.0, 1.0}}, usage);
  ASSERT_TRUE(s.Place(op, 0, 1).ok());
  EXPECT_EQ(s.Place(op, 1, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(s.Place(op, 1, 2).ok());
}

TEST(ScheduleTest, RejectsDoublePlacementOfClone) {
  OverlapUsageModel usage(0.5);
  Schedule s(3, 2);
  auto op = MakeUnitOp(5, {1.0, 1.0}, usage);
  ASSERT_TRUE(s.Place(op, 0, 1).ok());
  EXPECT_EQ(s.Place(op, 0, 2).code(), StatusCode::kInvalidArgument);
}

TEST(ScheduleTest, RejectsOutOfRange) {
  OverlapUsageModel usage(0.5);
  Schedule s(2, 2);
  auto op = MakeUnitOp(0, {1.0, 1.0}, usage);
  EXPECT_EQ(s.Place(op, 0, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.Place(op, 0, -1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.Place(op, 1, 0).code(), StatusCode::kOutOfRange);  // clone idx
}

TEST(ScheduleTest, RejectsDimensionMismatch) {
  OverlapUsageModel usage(0.5);
  Schedule s(2, 3);
  auto op = MakeUnitOp(0, {1.0, 1.0}, usage);
  EXPECT_EQ(s.Place(op, 0, 0).code(), StatusCode::kInvalidArgument);
}

TEST(ScheduleTest, PlaceRootedUsesHome) {
  OverlapUsageModel usage(0.5);
  Schedule s(4, 2);
  auto op = MakeOp(3, {{1.0, 2.0}, {3.0, 4.0}}, usage, /*home=*/{2, 0});
  ASSERT_TRUE(s.PlaceRooted(op).ok());
  EXPECT_EQ(s.HomeOf(3), (std::vector<int>{2, 0}));
  EXPECT_TRUE(s.HasOpAtSite(3, 2));
  EXPECT_TRUE(s.HasOpAtSite(3, 0));
  EXPECT_FALSE(s.HasOpAtSite(3, 1));
}

TEST(ScheduleTest, PlaceRootedRejectsFloating) {
  OverlapUsageModel usage(0.5);
  Schedule s(4, 2);
  auto op = MakeUnitOp(3, {1.0, 2.0}, usage);
  EXPECT_EQ(s.PlaceRooted(op).code(), StatusCode::kInvalidArgument);
}

TEST(ScheduleTest, HomeOfUnknownOpIsEmpty) {
  Schedule s(2, 2);
  EXPECT_TRUE(s.HomeOf(42).empty());
}

TEST(ScheduleTest, ValidateAcceptsCompleteSchedule) {
  OverlapUsageModel usage(0.5);
  Schedule s(3, 2);
  auto a = MakeOp(0, {{1.0, 1.0}, {2.0, 2.0}}, usage);
  auto b = MakeUnitOp(1, {3.0, 1.0}, usage);
  ASSERT_TRUE(s.Place(a, 0, 0).ok());
  ASSERT_TRUE(s.Place(a, 1, 1).ok());
  ASSERT_TRUE(s.Place(b, 0, 0).ok());
  EXPECT_TRUE(s.Validate({a, b}).ok());
}

TEST(ScheduleTest, ValidateDetectsMissingClone) {
  OverlapUsageModel usage(0.5);
  Schedule s(3, 2);
  auto a = MakeOp(0, {{1.0, 1.0}, {2.0, 2.0}}, usage);
  ASSERT_TRUE(s.Place(a, 0, 0).ok());
  EXPECT_EQ(s.Validate({a}).code(), StatusCode::kFailedPrecondition);
}

TEST(ScheduleTest, ValidateDetectsUnplacedOp) {
  OverlapUsageModel usage(0.5);
  Schedule s(3, 2);
  auto a = MakeUnitOp(0, {1.0, 1.0}, usage);
  EXPECT_EQ(s.Validate({a}).code(), StatusCode::kFailedPrecondition);
}

TEST(ScheduleTest, ValidateDetectsRootedAwayFromHome) {
  OverlapUsageModel usage(0.5);
  Schedule s(3, 2);
  auto a = MakeOp(0, {{1.0, 1.0}}, usage, /*home=*/{2});
  // Place manually at the wrong site.
  ASSERT_TRUE(s.Place(a, 0, 1).ok());
  EXPECT_EQ(s.Validate({a}).code(), StatusCode::kFailedPrecondition);
}

TEST(ScheduleTest, ToStringListsSites) {
  OverlapUsageModel usage(0.5);
  Schedule s(2, 2);
  ASSERT_TRUE(s.Place(MakeUnitOp(0, {1.0, 1.0}, usage), 0, 1).ok());
  const std::string str = s.ToString();
  EXPECT_NE(str.find("op0.0"), std::string::npos);
  EXPECT_NE(str.find("s1"), std::string::npos);
}

}  // namespace
}  // namespace mrs
