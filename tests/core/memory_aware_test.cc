#include "core/memory_aware.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::MakeFixture;
using testing_util::PipelinedChainFixture;
using testing_util::PlanFixture;

MachineConfig Machine(int sites) {
  MachineConfig m;
  m.num_sites = sites;
  return m;
}

MemoryOptions Memory(double bytes) {
  MemoryOptions m;
  m.site_memory_bytes = bytes;
  return m;
}

TEST(MemoryAwareTest, AmpleMemoryMatchesPlainTreeSchedule) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  auto plain = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                            Machine(12), usage);
  auto mem = MemoryAwareTreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                     CostParams{}, Machine(12), usage, {},
                                     Memory(1e12));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(mem->phase_splits, 0);
  EXPECT_EQ(mem->phases.size(), plain->phases.size());
  // Memory never constrains placement, so response matches the plain
  // scheduler exactly (identical list decisions).
  EXPECT_NEAR(mem->response_time, plain->response_time, 1e-9);
}

TEST(MemoryAwareTest, TracksResidentTables) {
  PlanFixture fx = BushyFourWayFixture({4000, 2000, 8000, 1000});
  OverlapUsageModel usage(0.5);
  auto mem = MemoryAwareTreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                     CostParams{}, Machine(8), usage, {},
                                     Memory(1e12));
  ASSERT_TRUE(mem.ok());
  EXPECT_GT(mem->peak_site_memory, 0.0);
  // Peak is at most the total table volume (2000+1000+8000 tuples inner,
  // 128B each, x1.2 overhead).
  const double total_tables = (2000.0 + 1000.0 + 8000.0) * 128.0 * 1.2;
  EXPECT_LE(mem->peak_site_memory, total_tables + 1.0);
}

// Bushy plan whose middle phase holds a memory-releasing probe task and a
// table-building task at once: (R0 JOIN R1) JOIN (R2 JOIN R3) on ONE site.
// Tables: t0 = |R1|, t1 = |R3|, t2 = |J1 out| = max(|R2|,|R3|), each times
// 128 B x 1.2 overhead. The middle phase needs t0 + t1 + t2 together =
// 6.14 MB; splitting it (probe task first, releasing t1) peaks at
// t1 + t2 = 4.6 MB.
PlanFixture SplittableBushyFixture() {
  return MakeFixture({5000, 10000, 20000, 10000}, [](PlanTree* plan) {
    int j0 =
        plan->AddJoin(plan->AddLeaf(0).value(), plan->AddLeaf(1).value())
            .value();
    int j1 =
        plan->AddJoin(plan->AddLeaf(2).value(), plan->AddLeaf(3).value())
            .value();
    plan->AddJoin(j0, j1).value();
  });
}

TEST(MemoryAwareTest, TightMemorySplitsPhases) {
  PlanFixture fx = SplittableBushyFixture();
  OverlapUsageModel usage(0.5);
  const MachineConfig machine = Machine(1);
  auto roomy = MemoryAwareTreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                       CostParams{}, machine, usage, {},
                                       Memory(1e12));
  ASSERT_TRUE(roomy.ok());
  ASSERT_EQ(roomy->phase_splits, 0);

  auto tight = MemoryAwareTreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                       CostParams{}, machine, usage, {},
                                       Memory(5.0 * 1024 * 1024));
  ASSERT_TRUE(tight.ok()) << tight.status().ToString();
  EXPECT_GT(tight->phase_splits, 0);
  EXPECT_GT(tight->phases.size(), roomy->phases.size());
  // Serialization costs response time.
  EXPECT_GE(tight->response_time, roomy->response_time - 1e-9);
  // But memory stays within budget.
  EXPECT_LE(tight->peak_site_memory, 5.0 * 1024 * 1024 + 1.0);
}

TEST(MemoryAwareTest, SchedulesAllOperatorsDespiteSplits) {
  PlanFixture fx = SplittableBushyFixture();
  OverlapUsageModel usage(0.5);
  auto result = MemoryAwareTreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                        CostParams{}, Machine(1), usage, {},
                                        Memory(5.0 * 1024 * 1024));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->phase_splits, 0);
  for (const auto& op : fx.op_tree.ops()) {
    EXPECT_FALSE(result->HomeOf(op.id).empty()) << "op" << op.id;
  }
  // Probes still co-located with their builds.
  for (const auto& op : fx.op_tree.ops()) {
    if (op.kind == OperatorKind::kProbe) {
      EXPECT_EQ(result->HomeOf(op.id), result->HomeOf(op.blocking_input));
    }
  }
}

TEST(MemoryAwareTest, RaisesBuildDegreeToFitTables) {
  // One join with a big inner table and tiny per-site memory: the build's
  // degree must rise so per-site shares fit.
  PlanFixture fx = MakeFixture({50000, 100000}, [](PlanTree* plan) {
    plan->AddJoin(plan->AddLeaf(0).value(), plan->AddLeaf(1).value())
        .value();
  });
  OverlapUsageModel usage(0.5);
  // Table = 100000*128*1.2 = 15.36MB; with 2MB sites, need >= 8 clones.
  auto result = MemoryAwareTreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                        CostParams{}, Machine(16), usage, {},
                                        Memory(2.0 * 1024 * 1024));
  ASSERT_TRUE(result.ok());
  const int build = fx.op_tree.OpsOfKind(OperatorKind::kBuild).front();
  EXPECT_GE(static_cast<int>(result->HomeOf(build).size()), 8);
}

TEST(MemoryAwareTest, FailsWhenASingleTableCannotFit) {
  PlanFixture fx = MakeFixture({50000, 100000}, [](PlanTree* plan) {
    plan->AddJoin(plan->AddLeaf(0).value(), plan->AddLeaf(1).value())
        .value();
  });
  OverlapUsageModel usage(0.5);
  // Table 15.36MB over 2 sites: shares of 7.7MB; sites only hold 1MB.
  auto result = MemoryAwareTreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                        CostParams{}, Machine(2), usage, {},
                                        Memory(1.0 * 1024 * 1024));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MemoryAwareTest, RejectsBadOptions) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  MemoryOptions bad;
  bad.site_memory_bytes = 0;
  EXPECT_FALSE(MemoryAwareTreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                       CostParams{}, Machine(4), usage, {},
                                       bad)
                   .ok());
  bad = MemoryOptions{};
  bad.hash_table_overhead = 0.5;
  EXPECT_FALSE(MemoryAwareTreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                       CostParams{}, Machine(4), usage, {},
                                       bad)
                   .ok());
}

TEST(MemoryAwareTest, ToStringMentionsSplits) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  auto result = MemoryAwareTreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                        CostParams{}, Machine(8), usage, {},
                                        Memory(1e12));
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->ToString().find("MemoryAwareSchedule"),
            std::string::npos);
}

}  // namespace
}  // namespace mrs
