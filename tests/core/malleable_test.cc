#include "core/malleable.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "resource/machine.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::MakeOp;

OperatorCost Cost(int id, double cpu, double disk, double bytes) {
  OperatorCost cost;
  cost.op_id = id;
  cost.kind = OperatorKind::kScan;
  cost.processing = WorkVector({cpu, disk, 0.0});
  cost.data_bytes = bytes;
  return cost;
}

TEST(MalleableTest, EmptyInput) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  auto sel = SelectMalleableParallelization({}, {}, params, usage, 8);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->degrees.empty());
  EXPECT_DOUBLE_EQ(sel->lower_bound, 0.0);
}

TEST(MalleableTest, SingleOpGetsUsefulParallelism) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  auto sel = SelectMalleableParallelization({Cost(0, 2000, 2000, 100000)}, {},
                                            params, usage, 32);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->degrees.size(), 1u);
  // A single large op should be spread, not serialized.
  EXPECT_GT(sel->degrees[0], 1);
  EXPECT_LE(sel->degrees[0], 32);
  EXPECT_GT(sel->candidates, 1);
}

TEST(MalleableTest, CandidateCountBounded) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  const int p = 16;
  std::vector<OperatorCost> ops;
  for (int i = 0; i < 5; ++i) ops.push_back(Cost(i, 500.0 + i * 100, 300, 0));
  auto sel = SelectMalleableParallelization(ops, {}, params, usage, p);
  ASSERT_TRUE(sel.ok());
  EXPECT_LE(sel->candidates, 1 + 5 * (p - 1));
}

TEST(MalleableTest, LowerBoundNeverAboveSerialParallelization) {
  // LB of the chosen parallelization <= LB of N = (1,...,1), since the
  // all-ones candidate is in the family.
  CostParams params;
  OverlapUsageModel usage(0.4);
  std::vector<OperatorCost> ops = {Cost(0, 900, 400, 50000),
                                   Cost(1, 100, 700, 20000),
                                   Cost(2, 1500, 0, 0)};
  auto sel = SelectMalleableParallelization(ops, {}, params, usage, 12);
  ASSERT_TRUE(sel.ok());
  // LB(1,..,1):
  WorkVector sum(3);
  double h = 0.0;
  for (const auto& c : ops) {
    WorkVector w = c.processing;
    w[kNetDim] += params.TransferMs(c.data_bytes);
    w[kCpuDim] += params.startup_ms_per_site / 2.0;
    w[kNetDim] += params.startup_ms_per_site / 2.0;
    sum += w;
    h = std::max(h, ParallelTime(c, 1, params, usage));
  }
  const double lb_serial = std::max(sum.Length() / 12.0, h);
  EXPECT_LE(sel->lower_bound, lb_serial + 1e-9);
}

TEST(MalleableTest, FixedOpsFloorTheBound) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  // A rooted op with a huge T_par dominates every parallelization.
  auto fixed = MakeOp(99, {{5000.0, 0.0, 0.0}}, usage, /*home=*/{0});
  auto sel = SelectMalleableParallelization({Cost(0, 100, 100, 0)}, {fixed},
                                            params, usage, 8);
  ASSERT_TRUE(sel.ok());
  EXPECT_GE(sel->lower_bound, fixed.t_par - 1e-9);
  // The floating op is never the bottleneck: greedy stops immediately.
  EXPECT_EQ(sel->degrees[0], 1);
}

TEST(MalleableTest, ScheduleCoversAllOps) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  std::vector<OperatorCost> floating = {Cost(0, 800, 200, 10000),
                                        Cost(1, 300, 900, 30000)};
  auto fixed = MakeOp(7, {{100.0, 100.0, 0.0}}, usage, /*home=*/{3});
  auto schedule =
      MalleableSchedule(floating, {fixed}, params, usage, 6, 3);
  ASSERT_TRUE(schedule.ok());
  EXPECT_FALSE(schedule->HomeOf(0).empty());
  EXPECT_FALSE(schedule->HomeOf(1).empty());
  EXPECT_EQ(schedule->HomeOf(7), (std::vector<int>{3}));
}

TEST(MalleableTest, Theorem71BoundHolds) {
  // Schedule length <= (2d+1) * LB(N_chosen) <= (2d+1) * OPT.
  CostParams params;
  Rng rng(31337);
  for (double eps : {0.1, 0.5, 0.9}) {
    OverlapUsageModel usage(eps);
    std::vector<OperatorCost> ops;
    const int m = 8;
    for (int i = 0; i < m; ++i) {
      ops.push_back(Cost(i, rng.UniformDouble(50, 2000),
                         rng.UniformDouble(0, 1500),
                         rng.UniformDouble(0, 200000)));
    }
    auto sel = SelectMalleableParallelization(ops, {}, params, usage, 10);
    ASSERT_TRUE(sel.ok());
    auto schedule = MalleableSchedule(ops, {}, params, usage, 10, 3);
    ASSERT_TRUE(schedule.ok());
    const double d = 3.0;
    EXPECT_LE(schedule->Makespan(),
              (2.0 * d + 1.0) * sel->lower_bound + 1e-6);
  }
}

TEST(MalleableTest, BeatsOrMatchesSerialOnParallelFriendlyLoad) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  std::vector<OperatorCost> ops = {Cost(0, 10000, 10000, 1000)};
  auto malleable = MalleableSchedule(ops, {}, params, usage, 16, 3);
  ASSERT_TRUE(malleable.ok());
  // Serial schedule of the same op:
  auto serial = ParallelizeAtDegree(ops[0], params, usage, 1, 16);
  ASSERT_TRUE(serial.ok());
  EXPECT_LT(malleable->Makespan(), serial->t_par);
}

TEST(MalleableTest, SurrogateObjectiveAtLeastAsParallel) {
  // The surrogate keeps growing degrees while the slowest operator
  // shrinks faster than total work grows; the LB objective stops at the
  // packing crossover. Surrogate degrees dominate componentwise here.
  CostParams params;
  OverlapUsageModel usage(0.5);
  std::vector<OperatorCost> ops;
  for (int i = 0; i < 6; ++i) {
    ops.push_back(Cost(i, 3000.0 + 500.0 * i, 2000.0, 50000.0));
  }
  auto lb = SelectMalleableParallelization(ops, {}, params, usage, 32,
                                           MalleableObjective::kLowerBound);
  auto surrogate = SelectMalleableParallelization(
      ops, {}, params, usage, 32, MalleableObjective::kSurrogateMakespan);
  ASSERT_TRUE(lb.ok());
  ASSERT_TRUE(surrogate.ok());
  int lb_total = 0;
  int surrogate_total = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    lb_total += lb->degrees[i];
    surrogate_total += surrogate->degrees[i];
  }
  EXPECT_GE(surrogate_total, lb_total);
}

TEST(MalleableTest, BothObjectivesSatisfyTheorem71Inequality) {
  // T <= (2d+1) * LB(N_chosen) holds for ANY parallelization, so both
  // objectives' schedules obey it against their own reported bound.
  CostParams params;
  OverlapUsageModel usage(0.4);
  Rng rng(909);
  std::vector<OperatorCost> ops;
  for (int i = 0; i < 7; ++i) {
    ops.push_back(Cost(i, rng.UniformDouble(100, 4000),
                       rng.UniformDouble(0, 2500),
                       rng.UniformDouble(0, 300000)));
  }
  for (MalleableObjective objective :
       {MalleableObjective::kLowerBound,
        MalleableObjective::kSurrogateMakespan}) {
    auto selection =
        SelectMalleableParallelization(ops, {}, params, usage, 9, objective);
    auto schedule = MalleableSchedule(ops, {}, params, usage, 9, 3, {},
                                      objective);
    ASSERT_TRUE(selection.ok());
    ASSERT_TRUE(schedule.ok());
    EXPECT_LE(schedule->Makespan(),
              (2.0 * 3 + 1.0) * selection->lower_bound + 1e-6);
  }
}

TEST(MalleableTest, RejectsBadSiteCount) {
  CostParams params;
  OverlapUsageModel usage(0.5);
  EXPECT_FALSE(
      SelectMalleableParallelization({Cost(0, 1, 1, 0)}, {}, params, usage, 0)
          .ok());
}

}  // namespace
}  // namespace mrs
