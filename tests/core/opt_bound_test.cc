#include "core/opt_bound.h"

#include <gtest/gtest.h>

#include "core/tree_schedule.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::MakeFixture;
using testing_util::PipelinedChainFixture;
using testing_util::PlanFixture;

MachineConfig Machine(int sites) {
  MachineConfig m;
  m.num_sites = sites;
  return m;
}

TEST(OptBoundTest, SingleScanMatchesBestParallelTime) {
  PlanFixture fx = testing_util::MakeFixture(
      {50000}, [](PlanTree* plan) { plan->AddLeaf(0).value(); });
  OverlapUsageModel usage(0.5);
  CostParams params;
  const int p = 16;
  auto bound = OptBound(fx.op_tree, fx.task_tree, fx.costs, params, usage,
                        0.7, p);
  ASSERT_TRUE(bound.ok());
  // One operator: CP term = its best CG_f parallel time.
  const OperatorCost& cost = fx.costs[0];
  const int n = std::min({MaxCoarseGrainDegree(cost.ProcessingArea(),
                                               cost.data_bytes, params, 0.7),
                          OptimalDegree(cost, params, usage, p), p});
  EXPECT_NEAR(bound->critical_path_bound,
              ParallelTime(cost, n, params, usage), 1e-9);
  // Work bound: processing only, spread over P.
  EXPECT_NEAR(bound->work_bound, cost.processing.Length() / p, 1e-9);
}

TEST(OptBoundTest, WorkBoundArithmetic) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  auto bound = OptBound(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                        usage, 0.7, 10);
  ASSERT_TRUE(bound.ok());
  WorkVector total(3);
  for (const auto& c : fx.costs) total += c.processing;
  EXPECT_NEAR(bound->work_bound, total.Length() / 10.0, 1e-9);
  EXPECT_GE(bound->Bound(), bound->work_bound);
  EXPECT_GE(bound->Bound(), bound->critical_path_bound);
}

TEST(OptBoundTest, LowerBoundsTreeSchedule) {
  for (auto fx_maker : {+[]() { return BushyFourWayFixture(); },
                        +[]() { return PipelinedChainFixture(6); }}) {
    PlanFixture fx = fx_maker();
    for (double eps : {0.1, 0.5, 0.9}) {
      for (int p : {2, 8, 32}) {
        OverlapUsageModel usage(eps);
        TreeScheduleOptions options;
        options.granularity = 0.7;
        auto schedule = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                     CostParams{}, Machine(p), usage,
                                     options);
        auto bound = OptBound(fx.op_tree, fx.task_tree, fx.costs,
                              CostParams{}, usage, 0.7, p);
        ASSERT_TRUE(schedule.ok());
        ASSERT_TRUE(bound.ok());
        EXPECT_LE(bound->Bound(), schedule->response_time + 1e-6)
            << "eps=" << eps << " p=" << p;
      }
    }
  }
}

TEST(OptBoundTest, CriticalPathGrowsWithBlockingDepth) {
  // A blocking chain (left-deep shape) has a longer critical path than a
  // fully pipelined chain over the same relations.
  std::vector<int64_t> sizes(5, 10000);
  PlanFixture pipelined = MakeFixture(sizes, [](PlanTree* plan) {
    int cur = plan->AddLeaf(0).value();
    for (int i = 1; i <= 4; ++i) {
      cur = plan->AddJoin(cur, plan->AddLeaf(i).value()).value();
    }
  });
  PlanFixture blocking = MakeFixture(sizes, [](PlanTree* plan) {
    int cur = plan->AddLeaf(0).value();
    for (int i = 1; i <= 4; ++i) {
      cur = plan->AddJoin(plan->AddLeaf(i).value(), cur).value();
    }
  });
  OverlapUsageModel usage(0.5);
  auto b_pipe = OptBound(pipelined.op_tree, pipelined.task_tree,
                         pipelined.costs, CostParams{}, usage, 0.7, 32);
  auto b_block = OptBound(blocking.op_tree, blocking.task_tree,
                          blocking.costs, CostParams{}, usage, 0.7, 32);
  ASSERT_TRUE(b_pipe.ok());
  ASSERT_TRUE(b_block.ok());
  EXPECT_GT(b_block->critical_path_bound, b_pipe->critical_path_bound);
}

TEST(OptBoundTest, WorkBoundDominatesOnTinyMachines) {
  PlanFixture fx = BushyFourWayFixture({100000, 100000, 100000, 100000});
  OverlapUsageModel usage(0.5);
  auto bound = OptBound(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                        usage, 0.7, 1);
  ASSERT_TRUE(bound.ok());
  EXPECT_GT(bound->work_bound, bound->critical_path_bound);
}

TEST(OptBoundTest, RejectsBadInput) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  std::vector<OperatorCost> short_costs(fx.costs.begin(), fx.costs.end() - 1);
  EXPECT_FALSE(OptBound(fx.op_tree, fx.task_tree, short_costs, CostParams{},
                        usage, 0.7, 8)
                   .ok());
  EXPECT_FALSE(
      OptBound(fx.op_tree, fx.task_tree, fx.costs, CostParams{}, usage, 0.7, 0)
          .ok());
}

}  // namespace
}  // namespace mrs
