// Pins the allocation-free guarantees of the work-vector core (DESIGN.md
// §4f): with d <= WorkVector::kInlineDims, splitting an operator into a
// uniform clone set allocates nothing, placing a clone into a reserved
// schedule allocates nothing, and the marginal allocation cost per extra
// clone of OPERATORSCHEDULE and of the fluid simulator's event loops is
// zero (total allocation counts are invariant in the clone count).

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "alloc_counter.h"
#include "core/operator_schedule.h"
#include "core/schedule.h"
#include "cost/parallelize.h"
#include "exec/fluid_simulator.h"
#include "resource/usage_model.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::AllocCount;
using testing_util::AllocCountingAvailable;
using testing_util::MakeOp;

/// Uniform degree-N ops at dimension 3 (inline storage).
std::vector<ParallelizedOp> UniformOps(int m, int degree,
                                       const OverlapUsageModel& usage) {
  std::vector<ParallelizedOp> ops;
  ops.reserve(static_cast<size_t>(m));
  const CostParams params;
  for (int i = 0; i < m; ++i) {
    OperatorCost cost;
    cost.op_id = i;
    cost.processing =
        WorkVector({90.0 + 7.0 * (i % 5), 60.0 + 11.0 * (i % 3), 4.0});
    cost.data_bytes = 20000.0 * (1 + i % 4);
    auto op = ParallelizeAtDegree(cost, params, usage, degree, degree);
    EXPECT_TRUE(op.ok()) << op.status().ToString();
    ops.push_back(std::move(op).value());
  }
  return ops;
}

TEST(AllocFreeTest, SplitIntoCloneSetAllocatesNothingAtInlineDims) {
  if (!AllocCountingAvailable()) {
    GTEST_SKIP() << "allocation counting unavailable under sanitizers";
  }
  const CostParams params;
  OperatorCost cost;
  cost.op_id = 7;
  cost.processing = WorkVector({120.0, 80.0, 10.0});
  cost.data_bytes = 50000.0;

  const uint64_t before = AllocCount();
  CloneSet set = SplitIntoCloneSet(cost, 64, params);
  const uint64_t used = AllocCount() - before;
  EXPECT_EQ(used, 0u) << "uniform split of a d=3 operator heap-allocated";
  EXPECT_TRUE(set.uniform());
  EXPECT_EQ(set.size(), 64u);
}

TEST(AllocFreeTest, PlaceAfterReserveForAllocatesNothing) {
  if (!AllocCountingAvailable()) {
    GTEST_SKIP() << "allocation counting unavailable under sanitizers";
  }
  const OverlapUsageModel usage(0.5);
  const int degree = 16;
  std::vector<ParallelizedOp> ops = UniformOps(12, degree, usage);

  Schedule schedule(degree, 3);
  schedule.ReserveFor(ops);
  const uint64_t before = AllocCount();
  for (const auto& op : ops) {
    for (int k = 0; k < op.degree; ++k) {
      ASSERT_TRUE(schedule.Place(op, k, (k + op.op_id) % degree).ok());
    }
  }
  const uint64_t used = AllocCount() - before;
  EXPECT_EQ(used, 0u) << "Place after ReserveFor performed " << used
                      << " heap allocations for "
                      << schedule.num_placements() << " clones";
}

// The steady-state loop of OPERATORSCHEDULE: doubling every operator's
// degree (same operator count, same machine) must not change the total
// number of heap allocations — all allocation is setup whose *count* is
// degree-independent, so the marginal allocations per clone are zero.
TEST(AllocFreeTest, OperatorScheduleMarginalAllocationsPerCloneAreZero) {
  if (!AllocCountingAvailable()) {
    GTEST_SKIP() << "allocation counting unavailable under sanitizers";
  }
  const OverlapUsageModel usage(0.5);
  const int num_sites = 64;
  const auto count_for = [&](int degree) -> uint64_t {
    std::vector<ParallelizedOp> ops = UniformOps(10, degree, usage);
    const uint64_t before = AllocCount();
    auto schedule = OperatorSchedule(ops, num_sites, 3);
    EXPECT_TRUE(schedule.ok()) << schedule.status().ToString();
    return AllocCount() - before;
  };
  const uint64_t at_n = count_for(8);
  const uint64_t at_2n = count_for(16);
  EXPECT_EQ(at_n, at_2n)
      << "doubling the clone count changed the allocation count: "
      << at_n << " -> " << at_2n;
}

// Same invariance for the fluid simulator: doubling the clones per site
// must not change the allocation count of SimulatePhase (the per-event
// accumulators are hoisted and the consumed-work temporaries are fused).
TEST(AllocFreeTest, FluidSimulatorMarginalAllocationsPerCloneAreZero) {
  if (!AllocCountingAvailable()) {
    GTEST_SKIP() << "allocation counting unavailable under sanitizers";
  }
  const OverlapUsageModel usage(0.5);
  const auto count_for = [&](int clones_per_site,
                             SharingPolicy policy) -> uint64_t {
    const int num_sites = 8;
    std::vector<ParallelizedOp> ops;
    for (int i = 0; i < clones_per_site; ++i) {
      std::vector<WorkVector> clones(
          static_cast<size_t>(num_sites),
          WorkVector({30.0 + i, 20.0 + 2.0 * i, 5.0}));
      ops.push_back(MakeOp(i, std::move(clones), usage));
    }
    Schedule schedule(num_sites, 3);
    schedule.ReserveFor(ops);
    for (const auto& op : ops) {
      for (int k = 0; k < op.degree; ++k) {
        EXPECT_TRUE(schedule.Place(op, k, k).ok());
      }
    }
    const FluidSimulator simulator(usage, policy);
    const uint64_t before = AllocCount();
    auto sim = simulator.SimulatePhase(schedule);
    EXPECT_TRUE(sim.ok()) << sim.status().ToString();
    return AllocCount() - before;
  };
  for (SharingPolicy policy :
       {SharingPolicy::kOptimalStretch, SharingPolicy::kUniformSlowdown}) {
    const uint64_t at_k = count_for(6, policy);
    const uint64_t at_2k = count_for(12, policy);
    EXPECT_EQ(at_k, at_2k)
        << "doubling clones per site changed the simulator's allocation "
           "count: "
        << at_k << " -> " << at_2k;
  }
}

}  // namespace
}  // namespace mrs
