#include "core/placement_index.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/operator_schedule.h"
#include "resource/usage_model.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::MakeOp;

TEST(PlacementIndexTest, EmptyIndexHasNoMinSite) {
  PlacementIndex index;
  EXPECT_EQ(index.MinSite(), -1);
  EXPECT_EQ(index.MinSiteExcluding({}), -1);
}

TEST(PlacementIndexTest, SingleSite) {
  PlacementIndex index({3.0});
  EXPECT_EQ(index.MinSite(), 0);
  EXPECT_EQ(index.MinSiteExcluding({0}), -1);
}

TEST(PlacementIndexTest, FindsMinAndTracksUpdates) {
  PlacementIndex index({5.0, 2.0, 7.0, 2.5, 9.0});
  EXPECT_EQ(index.MinSite(), 1);
  index.Update(1, 8.0);
  EXPECT_EQ(index.MinSite(), 3);
  index.Update(4, 0.5);
  EXPECT_EQ(index.MinSite(), 4);
  EXPECT_DOUBLE_EQ(index.LoadOf(4), 0.5);
}

TEST(PlacementIndexTest, TiesBreakToLowestIndex) {
  PlacementIndex index({4.0, 4.0, 4.0, 4.0, 4.0});
  EXPECT_EQ(index.MinSite(), 0);
  EXPECT_EQ(index.MinSiteExcluding({0}), 1);
  EXPECT_EQ(index.MinSiteExcluding({0, 1, 2}), 3);
  // A later site dropping *to* the tie value must not displace an earlier
  // one.
  index.Update(3, 4.0);
  EXPECT_EQ(index.MinSite(), 0);
}

TEST(PlacementIndexTest, ExclusionDescentSkipsUsedSites) {
  PlacementIndex index({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0});
  EXPECT_EQ(index.MinSiteExcluding({0}), 1);
  EXPECT_EQ(index.MinSiteExcluding({0, 1}), 2);
  EXPECT_EQ(index.MinSiteExcluding({1, 3}), 0);
  EXPECT_EQ(index.MinSiteExcluding({0, 1, 2, 3, 4, 5}), 6);
  EXPECT_EQ(index.MinSiteExcluding({0, 1, 2, 3, 4, 5, 6}), -1);
}

TEST(PlacementIndexTest, NonPowerOfTwoSiteCountsPadCleanly) {
  for (int p : {1, 2, 3, 5, 6, 7, 9, 13, 100}) {
    std::vector<double> loads;
    Rng rng(static_cast<uint64_t>(p));
    for (int s = 0; s < p; ++s) loads.push_back(rng.UniformDouble(0, 10));
    PlacementIndex index(loads);
    const int expect = static_cast<int>(
        std::min_element(loads.begin(), loads.end()) - loads.begin());
    EXPECT_EQ(index.MinSite(), expect) << "P=" << p;
  }
}

TEST(PlacementIndexTest, RandomizedAgainstLinearScan) {
  Rng rng(testing_util::FuzzSeed(20260806));
  for (int trial = 0; trial < 200; ++trial) {
    const int p = 1 + static_cast<int>(rng.Index(50));
    std::vector<double> loads;
    for (int s = 0; s < p; ++s) {
      // Coarse values force frequent ties.
      loads.push_back(static_cast<double>(rng.Index(6)));
    }
    PlacementIndex index(loads);
    std::vector<int> excluded;
    for (int s = 0; s < p; ++s) {
      if (rng.Index(3) == 0) excluded.push_back(s);
    }
    int expect = -1;
    double best = 0.0;
    for (int s = 0; s < p; ++s) {
      if (std::binary_search(excluded.begin(), excluded.end(), s)) continue;
      if (expect < 0 || loads[static_cast<size_t>(s)] < best) {
        expect = s;
        best = loads[static_cast<size_t>(s)];
      }
    }
    EXPECT_EQ(index.MinSiteExcluding(excluded), expect)
        << "trial " << trial << " P=" << p;
  }
}

TEST(PlacementIndexTest, ThresholdStraddlingSizesAgree) {
  // Exercise both storage modes (leaf scan at P <= kLinearScanMaxSites,
  // tournament tree above) on either side of the cutover, against the
  // reference scan.
  Rng rng(testing_util::FuzzSeed(20260807));
  for (int p : {PlacementIndex::kLinearScanMaxSites - 1,
                PlacementIndex::kLinearScanMaxSites,
                PlacementIndex::kLinearScanMaxSites + 1,
                2 * PlacementIndex::kLinearScanMaxSites}) {
    std::vector<double> loads;
    for (int s = 0; s < p; ++s) {
      loads.push_back(static_cast<double>(rng.Index(7)));
    }
    PlacementIndex index(loads);
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<int> excluded;
      for (int s = 0; s < p; ++s) {
        if (rng.Index(4) == 0) excluded.push_back(s);
      }
      int expect = -1;
      double best = 0.0;
      for (int s = 0; s < p; ++s) {
        if (std::binary_search(excluded.begin(), excluded.end(), s)) continue;
        if (expect < 0 || loads[static_cast<size_t>(s)] < best) {
          expect = s;
          best = loads[static_cast<size_t>(s)];
        }
      }
      EXPECT_EQ(index.MinSiteExcluding(excluded), expect)
          << "P=" << p << " trial " << trial;
      const int site = static_cast<int>(rng.Index(static_cast<size_t>(p)));
      loads[static_cast<size_t>(site)] = static_cast<double>(rng.Index(7));
      index.Update(site, loads[static_cast<size_t>(site)]);
    }
  }
}

/// Differential property: the indexed and linear OPERATORSCHEDULE paths
/// produce byte-identical schedules — same clone-to-site mapping in the
/// same placement order, bit-equal makespan — on random instances at
/// machine sizes up to P=4096, with and without rooted operators and a
/// residual base load (the online scheduler's branch).
class DifferentialPlacementTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(DifferentialPlacementTest, IndexedMatchesLinearOracle) {
  const auto [p, seed] = GetParam();
  OverlapUsageModel usage(0.5);
  Rng rng(testing_util::FuzzSeed(seed) + static_cast<uint64_t>(p));
  const int dims = 2 + static_cast<int>(rng.Index(2));
  const int num_ops = 12 + static_cast<int>(rng.Index(20));
  std::vector<ParallelizedOp> ops;
  for (int i = 0; i < num_ops; ++i) {
    const int max_degree = std::min(p, 8);
    const int degree =
        1 + static_cast<int>(rng.Index(static_cast<size_t>(max_degree)));
    std::vector<WorkVector> clones;
    for (int k = 0; k < degree; ++k) {
      WorkVector w(static_cast<size_t>(dims));
      for (int r = 0; r < dims; ++r) {
        // Quantized work forces load ties, the tie-break stress case.
        w[static_cast<size_t>(r)] = static_cast<double>(rng.Index(5));
      }
      clones.push_back(std::move(w));
    }
    std::vector<int> home;
    if (rng.Index(4) == 0) {
      // Rooted: home at `degree` distinct random sites.
      while (static_cast<int>(home.size()) < degree) {
        const int s = static_cast<int>(rng.Index(static_cast<size_t>(p)));
        if (std::find(home.begin(), home.end(), s) == home.end()) {
          home.push_back(s);
        }
      }
    }
    ops.push_back(MakeOp(i, std::move(clones), usage, std::move(home)));
  }

  std::vector<WorkVector> base;
  const bool with_base = rng.Index(2) == 0;
  if (with_base) {
    for (int s = 0; s < p; ++s) {
      WorkVector w(static_cast<size_t>(dims));
      for (int r = 0; r < dims; ++r) {
        w[static_cast<size_t>(r)] = static_cast<double>(rng.Index(4));
      }
      base.push_back(std::move(w));
    }
  }

  for (ListOrder order : {ListOrder::kDecreasingLength, ListOrder::kInputOrder}) {
    OperatorScheduleOptions linear;
    linear.order = order;
    linear.placement_index = false;
    linear.base_load = with_base ? &base : nullptr;
    OperatorScheduleOptions indexed = linear;
    indexed.placement_index = true;

    auto a = OperatorSchedule(ops, p, dims, linear);
    auto b = OperatorSchedule(ops, p, dims, indexed);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_TRUE(b->Validate(ops).ok());
    ASSERT_EQ(a->num_placements(), b->num_placements());
    for (int i = 0; i < a->num_placements(); ++i) {
      const ClonePlacement& pa = a->placements()[static_cast<size_t>(i)];
      const ClonePlacement& pb = b->placements()[static_cast<size_t>(i)];
      ASSERT_EQ(pa.op_id, pb.op_id) << "P=" << p << " placement " << i;
      ASSERT_EQ(pa.clone_idx, pb.clone_idx) << "P=" << p << " placement " << i;
      ASSERT_EQ(pa.site, pb.site)
          << "P=" << p << " op" << pa.op_id << " clone " << pa.clone_idx
          << " base=" << with_base;
    }
    // Identical placements make every derived quantity bit-equal.
    ASSERT_EQ(a->Makespan(), b->Makespan());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialPlacementTest,
    ::testing::Combine(::testing::Values(4, 64, 1024, 4096),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace mrs
