#include "core/tree_schedule.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "resource/usage_model.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::MakeFixture;
using testing_util::PipelinedChainFixture;
using testing_util::PlanFixture;

MachineConfig Machine(int sites) {
  MachineConfig m;
  m.num_sites = sites;
  return m;
}

TEST(TreeScheduleTest, SingleScanPlan) {
  PlanFixture fx = testing_util::MakeFixture(
      {5000}, [](PlanTree* plan) { plan->AddLeaf(0).value(); });
  OverlapUsageModel usage(0.5);
  auto result = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(8), usage);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->phases.size(), 1u);
  EXPECT_GT(result->response_time, 0.0);
  EXPECT_DOUBLE_EQ(result->response_time, result->phases[0].makespan);
}

TEST(TreeScheduleTest, ResponseIsSumOfPhaseMakespans) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  auto result = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(16), usage);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(static_cast<int>(result->phases.size()),
            fx.task_tree.num_phases());
  double sum = 0.0;
  for (const auto& phase : result->phases) {
    EXPECT_NEAR(phase.makespan, phase.schedule.Makespan(), 1e-9);
    sum += phase.makespan;
  }
  EXPECT_NEAR(result->response_time, sum, 1e-9);
}

TEST(TreeScheduleTest, EveryPhaseScheduleIsValid) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.3);
  auto result = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(10), usage);
  ASSERT_TRUE(result.ok());
  for (const auto& phase : result->phases) {
    EXPECT_TRUE(phase.schedule.Validate(phase.ops).ok());
  }
}

TEST(TreeScheduleTest, ProbeRootedAtBuildHome) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  auto result = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(12), usage);
  ASSERT_TRUE(result.ok());
  for (const auto& op : fx.op_tree.ops()) {
    if (op.kind != OperatorKind::kProbe) continue;
    std::vector<int> probe_home = result->HomeOf(op.id);
    std::vector<int> build_home = result->HomeOf(op.blocking_input);
    ASSERT_FALSE(probe_home.empty());
    ASSERT_FALSE(build_home.empty());
    EXPECT_EQ(probe_home, build_home)
        << "probe op" << op.id << " must run at its build's home";
  }
}

TEST(TreeScheduleTest, EveryOperatorScheduledExactlyOnce) {
  PlanFixture fx = PipelinedChainFixture(4);
  OverlapUsageModel usage(0.5);
  auto result = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(8), usage);
  ASSERT_TRUE(result.ok());
  int scheduled_ops = 0;
  for (const auto& phase : result->phases) {
    scheduled_ops += static_cast<int>(phase.ops.size());
  }
  EXPECT_EQ(scheduled_ops, fx.op_tree.num_ops());
  for (const auto& op : fx.op_tree.ops()) {
    EXPECT_FALSE(result->HomeOf(op.id).empty());
  }
}

TEST(TreeScheduleTest, PipelinedChainUsesTwoPhases) {
  PlanFixture fx = PipelinedChainFixture(5);
  OverlapUsageModel usage(0.5);
  auto result = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(20), usage);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->phases.size(), 2u);
}

TEST(TreeScheduleTest, MoreSitesNeverMuchWorse) {
  // Resource-limited vs large system: response should not grow with P
  // (modulo rooted-home effects, allow 5% slack).
  PlanFixture fx = BushyFourWayFixture({50000, 40000, 30000, 20000});
  OverlapUsageModel usage(0.3);
  auto small = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                            Machine(4), usage);
  auto large = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                            Machine(64), usage);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LE(large->response_time, small->response_time * 1.05);
}

TEST(TreeScheduleTest, GranularityRestrictsParallelism) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  TreeScheduleOptions tight;
  tight.granularity = 0.05;
  auto restricted = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                                 CostParams{}, Machine(32), usage, tight);
  TreeScheduleOptions loose;
  loose.granularity = 0.9;
  auto free = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           Machine(32), usage, loose);
  ASSERT_TRUE(restricted.ok());
  ASSERT_TRUE(free.ok());
  // A tiny f forces degree 1 for floating ops.
  int max_degree = 0;
  for (const auto& phase : restricted->phases) {
    for (const auto& op : phase.ops) {
      if (!op.rooted) max_degree = std::max(max_degree, op.degree);
    }
  }
  EXPECT_EQ(max_degree, 1);
  EXPECT_LE(free->response_time, restricted->response_time + 1e-9);
}

TEST(TreeScheduleTest, MalleablePolicyProducesValidSchedules) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  TreeScheduleOptions options;
  options.policy = ParallelizationPolicy::kMalleable;
  auto result = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(16), usage, options);
  ASSERT_TRUE(result.ok());
  for (const auto& phase : result->phases) {
    EXPECT_TRUE(phase.schedule.Validate(phase.ops).ok());
  }
  EXPECT_GT(result->response_time, 0.0);
}

TEST(TreeScheduleTest, JoinAwareBuildsLiftProbeParallelism) {
  // A tiny inner relation (small build) joined with a huge outer: under
  // kBuildOnly the probe inherits the build's tiny home; kJoinAware sizes
  // the build for the whole join.
  PlanFixture fx = testing_util::MakeFixture(
      {100000, 1000}, [](PlanTree* plan) {
        plan->AddJoin(plan->AddLeaf(0).value(), plan->AddLeaf(1).value())
            .value();
      });
  OverlapUsageModel usage(0.3);
  const int sites = 64;
  MachineConfig machine = Machine(sites);

  auto degree_of_probe = [&](BuildDegreePolicy policy) {
    TreeScheduleOptions options;
    options.granularity = 0.7;
    options.build_degree = policy;
    auto result = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                               CostParams{}, machine, usage, options);
    EXPECT_TRUE(result.ok());
    const int probe = fx.op_tree.root_op();
    return static_cast<int>(result->HomeOf(probe).size());
  };
  const int build_only = degree_of_probe(BuildDegreePolicy::kBuildOnly);
  const int join_aware = degree_of_probe(BuildDegreePolicy::kJoinAware);
  EXPECT_GT(join_aware, build_only);
}

TEST(TreeScheduleTest, JoinAwareNeverSlowerOnSkewedJoins) {
  PlanFixture fx = BushyFourWayFixture({100000, 1000, 90000, 2000});
  OverlapUsageModel usage(0.3);
  MachineConfig machine = Machine(40);
  TreeScheduleOptions build_only;
  build_only.build_degree = BuildDegreePolicy::kBuildOnly;
  TreeScheduleOptions join_aware;
  join_aware.build_degree = BuildDegreePolicy::kJoinAware;
  auto a = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                        machine, usage, build_only);
  auto b = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                        machine, usage, join_aware);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->response_time, a->response_time + 1e-9);
}

TEST(TreeScheduleTest, BuildOnlyPolicyStillValid) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  TreeScheduleOptions options;
  options.build_degree = BuildDegreePolicy::kBuildOnly;
  auto result = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(16), usage, options);
  ASSERT_TRUE(result.ok());
  for (const auto& phase : result->phases) {
    EXPECT_TRUE(phase.schedule.Validate(phase.ops).ok());
  }
}

TEST(TreeScheduleTest, RejectsMismatchedCosts) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  std::vector<OperatorCost> bad_costs(fx.costs.begin(), fx.costs.end() - 1);
  EXPECT_FALSE(TreeSchedule(fx.op_tree, fx.task_tree, bad_costs, CostParams{},
                            Machine(8), usage)
                   .ok());
}

TEST(TreeScheduleTest, SingleSiteMachineWorks) {
  PlanFixture fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  auto result = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             Machine(1), usage);
  ASSERT_TRUE(result.ok());
  for (const auto& phase : result->phases) {
    for (const auto& op : phase.ops) EXPECT_EQ(op.degree, 1);
  }
}

}  // namespace
}  // namespace mrs
