#include "core/operator_schedule.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "resource/usage_model.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::ListScheduleLowerBound;
using testing_util::MakeOp;
using testing_util::MakeUnitOp;

TEST(OperatorScheduleTest, EmptyInput) {
  auto s = OperatorSchedule({}, 4, 2);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->Makespan(), 0.0);
}

TEST(OperatorScheduleTest, SingleOpLandsSomewhere) {
  OverlapUsageModel usage(0.5);
  auto s = OperatorSchedule({MakeUnitOp(0, {4.0, 2.0}, usage)}, 3, 2);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_placements(), 1);
  EXPECT_NEAR(s->Makespan(), usage.SequentialTime({4.0, 2.0}), 1e-12);
}

TEST(OperatorScheduleTest, BalancesIdenticalUnitOps) {
  // 4 identical single-clone ops on 4 sites: perfect spread, one per site.
  OverlapUsageModel usage(0.5);
  std::vector<ParallelizedOp> ops;
  for (int i = 0; i < 4; ++i) ops.push_back(MakeUnitOp(i, {2.0, 2.0}, usage));
  auto s = OperatorSchedule(ops, 4, 2);
  ASSERT_TRUE(s.ok());
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(s->SitePlacements(j).size(), 1u);
  }
  EXPECT_NEAR(s->Makespan(), usage.SequentialTime({2.0, 2.0}), 1e-12);
}

TEST(OperatorScheduleTest, ExploitsComplementaryResourceNeeds) {
  // A CPU-heavy and a disk-heavy op share one site without congestion
  // (the multi-dimensional advantage over scalar packing): [10,0] + [0,10]
  // fit in max(T_seq) rather than 20.
  OverlapUsageModel usage(1.0);  // perfect overlap: T_seq = max
  std::vector<ParallelizedOp> ops = {
      MakeUnitOp(0, {10.0, 0.0}, usage),
      MakeUnitOp(1, {0.0, 10.0}, usage),
  };
  auto s = OperatorSchedule(ops, 1, 2);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->Makespan(), 10.0, 1e-12);
}

TEST(OperatorScheduleTest, ConstraintAHonored) {
  // One op with 3 clones on 3 sites: every site exactly one clone.
  OverlapUsageModel usage(0.5);
  auto op = MakeOp(0, {{2.0, 1.0}, {2.0, 1.0}, {2.0, 1.0}}, usage);
  auto s = OperatorSchedule({op}, 3, 2);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->Validate({op}).ok());
  std::vector<int> home = s->HomeOf(0);
  std::sort(home.begin(), home.end());
  EXPECT_EQ(home, (std::vector<int>{0, 1, 2}));
}

TEST(OperatorScheduleTest, DegreeBeyondSitesIsRejected) {
  OverlapUsageModel usage(0.5);
  auto op = MakeOp(0, {{1.0, 1.0}, {1.0, 1.0}}, usage);
  EXPECT_EQ(OperatorSchedule({op}, 1, 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OperatorScheduleTest, RootedOpsPrePlaced) {
  OverlapUsageModel usage(0.5);
  auto rooted = MakeOp(0, {{5.0, 5.0}, {5.0, 5.0}}, usage, /*home=*/{1, 2});
  auto floating = MakeUnitOp(1, {4.0, 4.0}, usage);
  auto s = OperatorSchedule({rooted, floating}, 3, 2);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->HomeOf(0), (std::vector<int>{1, 2}));
  // The floating op goes to the empty site 0.
  EXPECT_EQ(s->HomeOf(1), (std::vector<int>{0}));
}

TEST(OperatorScheduleTest, LeastLoadedPicksLightestAllowableSite) {
  OverlapUsageModel usage(0.5);
  // Pre-load sites 0 and 1 via a rooted op; the next clone must land on 2.
  auto rooted = MakeOp(0, {{9.0, 9.0}, {6.0, 6.0}}, usage, /*home=*/{0, 1});
  auto floating = MakeUnitOp(1, {1.0, 1.0}, usage);
  auto s = OperatorSchedule({rooted, floating}, 3, 2);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->HomeOf(1), (std::vector<int>{2}));
}

TEST(OperatorScheduleTest, ListOrderIsLongestFirst) {
  // With decreasing-length order, the two big clones go to separate empty
  // sites before the small ones fill in; the greedy result is optimal
  // here. Input order instead stacks badly.
  OverlapUsageModel usage(1.0);
  std::vector<ParallelizedOp> ops = {
      MakeUnitOp(0, {1.0, 0.0}, usage), MakeUnitOp(1, {1.0, 0.0}, usage),
      MakeUnitOp(2, {1.0, 0.0}, usage), MakeUnitOp(3, {1.0, 0.0}, usage),
      MakeUnitOp(4, {4.0, 0.0}, usage), MakeUnitOp(5, {4.0, 0.0}, usage),
  };
  auto s = OperatorSchedule(ops, 2, 2);
  ASSERT_TRUE(s.ok());
  // Optimal: each site gets one big (4) + two small (1+1) = 6.
  EXPECT_NEAR(s->Makespan(), 6.0, 1e-12);
}

TEST(OperatorScheduleTest, DeterministicAcrossRuns) {
  OverlapUsageModel usage(0.5);
  Rng rng(99);
  std::vector<ParallelizedOp> ops;
  for (int i = 0; i < 20; ++i) {
    ops.push_back(MakeUnitOp(
        i, {rng.UniformDouble(0, 10), rng.UniformDouble(0, 10)}, usage));
  }
  auto a = OperatorSchedule(ops, 5, 2);
  auto b = OperatorSchedule(ops, 5, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_placements(), b->num_placements());
  for (int i = 0; i < a->num_placements(); ++i) {
    EXPECT_EQ(a->placements()[static_cast<size_t>(i)].site,
              b->placements()[static_cast<size_t>(i)].site);
  }
}

TEST(OperatorScheduleTest, AlternativeOrdersStillValid) {
  OverlapUsageModel usage(0.5);
  Rng rng(7);
  std::vector<ParallelizedOp> ops;
  for (int i = 0; i < 12; ++i) {
    ops.push_back(MakeOp(
        i,
        {{rng.UniformDouble(0, 5), rng.UniformDouble(0, 5)},
         {rng.UniformDouble(0, 5), rng.UniformDouble(0, 5)}},
        usage));
  }
  for (ListOrder order :
       {ListOrder::kIncreasingLength, ListOrder::kInputOrder,
        ListOrder::kRandom}) {
    OperatorScheduleOptions options;
    options.order = order;
    options.shuffle_seed = 3;
    auto s = OperatorSchedule(ops, 4, 2, options);
    ASSERT_TRUE(s.ok());
    EXPECT_TRUE(s->Validate(ops).ok());
  }
  OperatorScheduleOptions ff;
  ff.site_choice = SiteChoice::kFirstAllowable;
  auto s = OperatorSchedule(ops, 4, 2, ff);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->Validate(ops).ok());
}

/// Tie-break contract for kLeastLoaded: among equal-load allowable sites
/// the lowest-numbered site wins, identically on the reference linear
/// scan and the indexed placement engine.
TEST(OperatorScheduleTest, TieBreaksToLowestIndexOnBothEngines) {
  OverlapUsageModel usage(0.5);
  for (bool use_index : {false, true}) {
    OperatorScheduleOptions options;
    options.placement_index = use_index;

    // All four sites empty and equal: a degree-2 op takes sites 0 then 1
    // (constraint A excludes 0 for the second clone).
    auto even = MakeOp(0, {{2.0, 2.0}, {2.0, 2.0}}, usage);
    auto s = OperatorSchedule({even}, 4, 2, options);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s->HomeOf(0), (std::vector<int>{0, 1})) << "index=" << use_index;

    // Rooted preload leaves sites 0 and 2 tied at zero: the floating op
    // lands on 0, not 2.
    auto rooted = MakeOp(0, {{5.0, 5.0}, {5.0, 5.0}}, usage, /*home=*/{1, 3});
    auto floating = MakeUnitOp(1, {1.0, 1.0}, usage);
    s = OperatorSchedule({rooted, floating}, 4, 2, options);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s->HomeOf(1), (std::vector<int>{0})) << "index=" << use_index;
  }
}

/// Same contract on the base_load branch (the online scheduler's residual
/// path): ties in l(base[s] + work(s)) resolve to the lowest site index on
/// both engines.
TEST(OperatorScheduleTest, TieBreaksToLowestIndexWithBaseLoad) {
  OverlapUsageModel usage(0.5);
  const std::vector<WorkVector> base = {
      {3.0, 3.0}, {0.0, 0.0}, {3.0, 3.0}, {0.0, 0.0}};
  for (bool use_index : {false, true}) {
    OperatorScheduleOptions options;
    options.placement_index = use_index;
    options.base_load = &base;

    // Sites 1 and 3 are tied least-loaded: a degree-2 op takes 1 then 3.
    auto op = MakeOp(0, {{1.0, 1.0}, {1.0, 1.0}}, usage);
    auto s = OperatorSchedule({op}, 4, 2, options);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s->HomeOf(0), (std::vector<int>{1, 3})) << "index=" << use_index;

    // After op 0 lands, sites 1 and 3 are tied again at l = 1 (below the
    // base-3 sites): the follow-up unit op, free of constraint A against
    // op 0, must resolve the fresh tie to the lower index 1.
    auto follow = MakeUnitOp(1, {1.0, 1.0}, usage);
    s = OperatorSchedule({op, follow}, 4, 2, options);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s->HomeOf(0), (std::vector<int>{1, 3})) << "index=" << use_index;
    EXPECT_EQ(s->HomeOf(1), (std::vector<int>{1})) << "index=" << use_index;
  }
}

TEST(OperatorScheduleTest, MakespanNeverBelowLowerBound) {
  OverlapUsageModel usage(0.3);
  Rng rng(21);
  std::vector<ParallelizedOp> ops;
  for (int i = 0; i < 15; ++i) {
    std::vector<WorkVector> clones(
        static_cast<size_t>(1 + rng.Index(3)),
        WorkVector({rng.UniformDouble(0, 8), rng.UniformDouble(0, 8),
                    rng.UniformDouble(0, 8)}));
    ops.push_back(MakeOp(i, std::move(clones), usage));
  }
  auto s = OperatorSchedule(ops, 6, 3);
  ASSERT_TRUE(s.ok());
  EXPECT_GE(s->Makespan() + 1e-9, ListScheduleLowerBound(ops, 6));
}

/// Theorem 5.1(a) property: for random instances, the list schedule is
/// within (2d+1) of LB <= OPT for the given parallelization. Swept over
/// dimensionality and machine size.
class ListBoundPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(ListBoundPropertyTest, WithinTwoDPlusOneOfLowerBound) {
  const auto [d, p, seed] = GetParam();
  OverlapUsageModel usage(0.5);
  Rng rng(seed);
  std::vector<ParallelizedOp> ops;
  const int m = 4 + static_cast<int>(rng.Index(12));
  for (int i = 0; i < m; ++i) {
    const int degree = 1 + static_cast<int>(rng.Index(
                               static_cast<size_t>(std::min(p, 4))));
    std::vector<WorkVector> clones;
    for (int k = 0; k < degree; ++k) {
      WorkVector w(static_cast<size_t>(d));
      for (int r = 0; r < d; ++r) {
        w[static_cast<size_t>(r)] = rng.UniformDouble(0.0, 10.0);
      }
      clones.push_back(std::move(w));
    }
    ops.push_back(MakeOp(i, std::move(clones), usage));
  }
  auto s = OperatorSchedule(ops, p, d);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s->Validate(ops).ok());
  const double lb = ListScheduleLowerBound(ops, p);
  EXPECT_LE(s->Makespan(), (2.0 * d + 1.0) * lb + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListBoundPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(2, 4, 8, 16),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace mrs
