#include "core/preemptability.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "resource/machine.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::MakeOp;
using testing_util::MakeUnitOp;

TEST(PreemptabilityPenaltyTest, ForDimConstruction) {
  auto penalty = PreemptabilityPenalty::ForDim(3, kDiskDim, 0.1);
  EXPECT_DOUBLE_EQ(penalty.DeltaFor(kCpuDim), 0.0);
  EXPECT_DOUBLE_EQ(penalty.DeltaFor(kDiskDim), 0.1);
  EXPECT_DOUBLE_EQ(penalty.DeltaFor(kNetDim), 0.0);
  // Out-of-range dims read as 0.
  EXPECT_DOUBLE_EQ(penalty.DeltaFor(7), 0.0);
  EXPECT_NE(penalty.ToString().find("0.100"), std::string::npos);
}

TEST(PenalizedSiteTimeTest, ZeroDeltaMatchesPlainModel) {
  OverlapUsageModel usage(0.4);
  Schedule s(2, 2);
  ASSERT_TRUE(s.Place(MakeUnitOp(0, {5.0, 3.0}, usage), 0, 0).ok());
  ASSERT_TRUE(s.Place(MakeUnitOp(1, {2.0, 6.0}, usage), 0, 0).ok());
  PreemptabilityPenalty none;
  none.delta = {0.0, 0.0};
  EXPECT_NEAR(PenalizedSiteTime(s, 0, none), s.SiteTime(0), 1e-12);
  EXPECT_NEAR(PenalizedMakespan(s, none), s.Makespan(), 1e-12);
}

TEST(PenalizedSiteTimeTest, InflatesSharedDimensionOnly) {
  // Two clones share dimension 1 (both nonzero) but only one uses dim 0.
  OverlapUsageModel usage(0.0);  // T_seq = sum, keep load the binding term
  Schedule s(1, 2);
  ASSERT_TRUE(s.Place(MakeUnitOp(0, {0.0, 10.0}, usage), 0, 0).ok());
  ASSERT_TRUE(s.Place(MakeUnitOp(1, {4.0, 10.0}, usage), 0, 0).ok());
  PreemptabilityPenalty penalty;
  penalty.delta = {0.5, 0.1};
  // dim0: one user -> no inflation: 4. dim1: two users -> 20 * 1.1 = 22.
  // Slowest clone T_seq = 14 < 22.
  EXPECT_NEAR(PenalizedSiteTime(s, 0, penalty), 22.0, 1e-12);
}

TEST(PenalizedSiteTimeTest, SingleCloneNeverPenalized) {
  OverlapUsageModel usage(0.5);
  Schedule s(1, 3);
  ASSERT_TRUE(s.Place(MakeUnitOp(0, {4.0, 9.0, 1.0}, usage), 0, 0).ok());
  PreemptabilityPenalty penalty;
  penalty.delta = {1.0, 1.0, 1.0};
  EXPECT_NEAR(PenalizedSiteTime(s, 0, penalty), s.SiteTime(0), 1e-12);
}

TEST(PenalizedMakespanTest, MonotoneInDelta) {
  OverlapUsageModel usage(0.5);
  Rng rng(404);
  std::vector<ParallelizedOp> ops;
  for (int i = 0; i < 10; ++i) {
    ops.push_back(MakeUnitOp(
        i,
        {rng.UniformDouble(0, 5), rng.UniformDouble(0, 5),
         rng.UniformDouble(0, 5)},
        usage));
  }
  auto s = OperatorSchedule(ops, 3, 3);
  ASSERT_TRUE(s.ok());
  double prev = s->Makespan();
  for (double d : {0.05, 0.1, 0.2, 0.4}) {
    auto penalty = PreemptabilityPenalty::ForDim(3, kDiskDim, d);
    const double m = PenalizedMakespan(*s, penalty);
    EXPECT_GE(m + 1e-12, prev);
    prev = m;
  }
}

TEST(PenaltyAwareScheduleTest, DeltaZeroStaysNearPlainQuality) {
  // With delta = 0 the penalized model is the plain model; the aware
  // scheduler's lookahead site choice is a different greedy but must stay
  // in the same quality class (both obey Theorem 5.1's bound; on random
  // loads they should be within a few percent of each other).
  OverlapUsageModel usage(0.5);
  Rng rng(11);
  std::vector<ParallelizedOp> ops;
  for (int i = 0; i < 12; ++i) {
    ops.push_back(MakeOp(
        i,
        {{rng.UniformDouble(0, 9), rng.UniformDouble(0, 9)},
         {rng.UniformDouble(0, 9), rng.UniformDouble(0, 9)}},
        usage));
  }
  PreemptabilityPenalty none;
  none.delta = {0.0, 0.0};
  auto plain = OperatorSchedule(ops, 4, 2);
  auto aware = PenaltyAwareOperatorSchedule(ops, 4, 2, none);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(aware.ok());
  EXPECT_TRUE(aware->Validate(ops).ok());
  const double lb = testing_util::ListScheduleLowerBound(ops, 4);
  EXPECT_LE(aware->Makespan(), (2.0 * 2 + 1.0) * lb + 1e-9);
  EXPECT_LE(aware->Makespan(), plain->Makespan() * 1.25);
  EXPECT_GE(aware->Makespan(), plain->Makespan() * 0.75);
}

TEST(PenaltyAwareScheduleTest, AvoidsStackingPenalizedResource) {
  // Four disk-only clones and four cpu-only clones on two sites with a
  // harsh disk penalty: the aware scheduler mixes cpu/disk per site; a
  // disk-blind packing that stacks disk clones pays the inflation.
  OverlapUsageModel usage(1.0);
  std::vector<ParallelizedOp> ops;
  for (int i = 0; i < 4; ++i) {
    ops.push_back(MakeUnitOp(i, {0.0, 8.0}, usage));           // disk
    ops.push_back(MakeUnitOp(4 + i, {8.0, 0.0}, usage));       // cpu
  }
  PreemptabilityPenalty penalty;
  penalty.delta = {0.0, 0.5};
  auto aware = PenaltyAwareOperatorSchedule(ops, 4, 2, penalty);
  ASSERT_TRUE(aware.ok());
  ASSERT_TRUE(aware->Validate(ops).ok());
  auto plain = OperatorSchedule(ops, 4, 2);
  ASSERT_TRUE(plain.ok());
  EXPECT_LE(PenalizedMakespan(*aware, penalty),
            PenalizedMakespan(*plain, penalty) + 1e-9);
}

TEST(PenaltyAwareScheduleTest, RandomInstancesNeverWorse) {
  Rng rng(2025);
  OverlapUsageModel usage(0.5);
  const auto penalty = PreemptabilityPenalty::ForDim(3, kDiskDim, 0.3);
  int aware_wins_or_ties = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    std::vector<ParallelizedOp> ops;
    const int m = 6 + static_cast<int>(rng.Index(10));
    for (int i = 0; i < m; ++i) {
      ops.push_back(MakeUnitOp(
          i,
          {rng.UniformDouble(0, 6), rng.UniformDouble(0, 6),
           rng.UniformDouble(0, 6)},
          usage));
    }
    auto aware = PenaltyAwareOperatorSchedule(ops, 4, 3, penalty);
    auto plain = OperatorSchedule(ops, 4, 3);
    ASSERT_TRUE(aware.ok());
    ASSERT_TRUE(plain.ok());
    if (PenalizedMakespan(*aware, penalty) <=
        PenalizedMakespan(*plain, penalty) + 1e-9) {
      ++aware_wins_or_ties;
    }
  }
  // Greedy heuristics admit adversarial instances, but on random loads
  // the penalty-aware variant should essentially never lose.
  EXPECT_GE(aware_wins_or_ties, trials - 3);
}

TEST(PenaltyAwareScheduleTest, RespectsConstraintsAndErrors) {
  OverlapUsageModel usage(0.5);
  const auto penalty = PreemptabilityPenalty::ForDim(2, 1, 0.2);
  auto multi = MakeOp(0, {{1.0, 1.0}, {1.0, 1.0}}, usage);
  auto s = PenaltyAwareOperatorSchedule({multi}, 2, 2, penalty);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->Validate({multi}).ok());
  EXPECT_FALSE(PenaltyAwareOperatorSchedule({multi}, 1, 2, penalty).ok());
}

TEST(PenalizedResponseTimeTest, SumsPhases) {
  OverlapUsageModel usage(0.5);
  auto fx = testing_util::BushyFourWayFixture();
  MachineConfig machine;
  machine.num_sites = 6;
  auto plan = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                           machine, usage);
  ASSERT_TRUE(plan.ok());
  const auto penalty = PreemptabilityPenalty::ForDim(3, kDiskDim, 0.2);
  double sum = 0.0;
  for (const auto& phase : plan->phases) {
    sum += PenalizedMakespan(phase.schedule, penalty);
  }
  EXPECT_NEAR(PenalizedResponseTime(*plan, penalty), sum, 1e-9);
  EXPECT_GE(PenalizedResponseTime(*plan, penalty),
            plan->response_time - 1e-9);
}

}  // namespace
}  // namespace mrs
