#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "plan/query_graph.h"
#include "test_util.h"

namespace mrs {
namespace {

QueryGraph Chain(int n) {
  QueryGraph g(n);
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(g.AddJoin(i, i + 1).ok());
  }
  return g;
}

std::vector<int64_t> ChainSizes(int n) {
  std::vector<int64_t> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(1000 + 7919ll * i % 9000 * 11);
  }
  return sizes;
}

TEST(OptimizerTest, PrunedSearchMatchesExhaustiveBitExactly) {
  for (int n = 2; n <= 5; ++n) {
    auto catalog = testing_util::MakeCatalog(ChainSizes(n));
    const QueryGraph graph = Chain(n);
    const MachineConfig machine;
    const OverlapUsageModel usage(0.5);
    auto pruned = OptimizeJoinOrder(*catalog, graph, CostParams{}, machine,
                                    usage, OptimizerOptions{});
    auto full = ExhaustivePlanSearch(*catalog, graph, CostParams{}, machine,
                                     usage, OptimizerOptions{});
    ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    EXPECT_EQ(pruned->makespan, full->makespan) << "chain of " << n;
    EXPECT_EQ(pruned->plan_id, full->plan_id) << "chain of " << n;
    EXPECT_EQ(pruned->plan->ToString(), full->plan->ToString());
    EXPECT_EQ(full->stats.plans_pruned, 0u);
    EXPECT_EQ(full->stats.subplans_pruned, 0u);
    EXPECT_LE(pruned->stats.plans_scheduled, full->stats.plans_scheduled);
  }
}

TEST(OptimizerTest, ExplainIsByteIdenticalAcrossThreadCounts) {
  auto catalog = testing_util::MakeCatalog(ChainSizes(6));
  const QueryGraph graph = Chain(6);
  const MachineConfig machine;
  const OverlapUsageModel usage(0.5);
  std::string reference;
  for (const int threads : {1, 2, 8}) {
    OptimizerOptions options;
    options.num_threads = threads;
    auto result =
        OptimizeJoinOrder(*catalog, graph, CostParams{}, machine, usage,
                          options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (reference.empty()) {
      reference = result->Explain();
    } else {
      EXPECT_EQ(result->Explain(), reference) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(OptimizerTest, WinnerNeverWorseThanTheGreedySeed) {
  auto catalog = testing_util::MakeCatalog(ChainSizes(5));
  const QueryGraph graph = Chain(5);
  auto result = OptimizeJoinOrder(*catalog, graph, CostParams{},
                                  MachineConfig{}, OverlapUsageModel(0.5),
                                  OptimizerOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->makespan, result->seed_makespan);
  EXPECT_GT(result->makespan, 0.0);
}

TEST(OptimizerTest, SingleRelationQueryIsJustTheScan) {
  auto catalog = testing_util::MakeCatalog({5000});
  const QueryGraph graph(1);
  auto result = OptimizeJoinOrder(*catalog, graph, CostParams{},
                                  MachineConfig{}, OverlapUsageModel(0.5),
                                  OptimizerOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->plan, nullptr);
  EXPECT_EQ(result->plan->num_joins(), 0);
  EXPECT_EQ(result->plan_id, 0u);
  EXPECT_GT(result->makespan, 0.0);
}

TEST(OptimizerTest, StatsAreInternallyConsistent) {
  auto catalog = testing_util::MakeCatalog(ChainSizes(5));
  const QueryGraph graph = Chain(5);
  auto result = OptimizeJoinOrder(*catalog, graph, CostParams{},
                                  MachineConfig{}, OverlapUsageModel(0.5),
                                  OptimizerOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const OptimizerStats& s = result->stats;
  EXPECT_EQ(s.plans_considered, s.plans_scheduled + s.plans_pruned);
  EXPECT_EQ(s.subplans_considered, s.subplans_kept + s.subplans_pruned);
  EXPECT_GT(s.num_subsets, 0);
  EXPECT_GT(s.num_slices, 0);
}

TEST(OptimizerTest, ExhaustiveSchedulesTheWholeChainPlanSpace) {
  // Chain of 4: Catalan(3) * 2^3 = 40 complete plans.
  auto catalog = testing_util::MakeCatalog(ChainSizes(4));
  auto result = ExhaustivePlanSearch(*catalog, Chain(4), CostParams{},
                                     MachineConfig{}, OverlapUsageModel(0.5),
                                     OptimizerOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.plans_considered, 40u);
  EXPECT_EQ(result->stats.plans_scheduled, 40u);
}

TEST(OptimizerTest, ListEngineAgreesWithItsExhaustiveBaseline) {
  auto catalog = testing_util::MakeCatalog(ChainSizes(4));
  const QueryGraph graph = Chain(4);
  OptimizerOptions options;
  options.engine = OptimizerEngine::kList;
  auto pruned = OptimizeJoinOrder(*catalog, graph, CostParams{},
                                  MachineConfig{}, OverlapUsageModel(0.5),
                                  options);
  auto full = ExhaustivePlanSearch(*catalog, graph, CostParams{},
                                   MachineConfig{}, OverlapUsageModel(0.5),
                                   options);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(pruned->makespan, full->makespan);
  EXPECT_EQ(pruned->plan_id, full->plan_id);
}

TEST(OptimizerTest, CountersLandInTheProvidedRegistry) {
  auto catalog = testing_util::MakeCatalog(ChainSizes(4));
  MetricsRegistry registry;
  OptimizerOptions options;
  options.metrics = &registry;
  auto result = OptimizeJoinOrder(*catalog, Chain(4), CostParams{},
                                  MachineConfig{}, OverlapUsageModel(0.5),
                                  options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(registry.GetCounter("opt.plans_considered")->value(),
            result->stats.plans_considered);
  EXPECT_EQ(registry.GetCounter("opt.plans_scheduled")->value(),
            result->stats.plans_scheduled);
  EXPECT_EQ(registry.GetCounter("opt.plans_pruned")->value(),
            result->stats.plans_pruned);
}

TEST(OptimizerTest, RejectsGraphCatalogMismatchAndDisconnectedGraphs) {
  auto catalog = testing_util::MakeCatalog(ChainSizes(4));
  EXPECT_FALSE(OptimizeJoinOrder(*catalog, Chain(3), CostParams{},
                                 MachineConfig{}, OverlapUsageModel(0.5),
                                 OptimizerOptions{})
                   .ok());
  QueryGraph disconnected(4);
  ASSERT_TRUE(disconnected.AddJoin(0, 1).ok());
  ASSERT_TRUE(disconnected.AddJoin(2, 3).ok());
  EXPECT_FALSE(OptimizeJoinOrder(*catalog, disconnected, CostParams{},
                                 MachineConfig{}, OverlapUsageModel(0.5),
                                 OptimizerOptions{})
                   .ok());
}

TEST(OptimizerTest, CandidateCapFailsClosed) {
  auto catalog = testing_util::MakeCatalog(ChainSizes(6));
  OptimizerOptions options;
  options.max_candidates = 4;
  auto result = OptimizeJoinOrder(*catalog, Chain(6), CostParams{},
                                  MachineConfig{}, OverlapUsageModel(0.5),
                                  options);
  EXPECT_FALSE(result.ok());
}

TEST(OptimizerTest, TraceRecordsTheSearchPhases) {
  auto catalog = testing_util::MakeCatalog(ChainSizes(4));
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  OptimizerOptions options;
  options.trace = &trace;
  auto result = OptimizeJoinOrder(*catalog, Chain(4), CostParams{},
                                  MachineConfig{}, OverlapUsageModel(0.5),
                                  options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  bool saw_seed = false;
  bool saw_dp = false;
  bool saw_search = false;
  bool saw_whole = false;
  for (const auto& span : trace.spans()) {
    if (span.name == "opt_seed") saw_seed = true;
    if (span.name == "opt_dp") saw_dp = true;
    if (span.name == "opt_search") saw_search = true;
    if (span.name == "optimize") saw_whole = true;
  }
  EXPECT_TRUE(saw_seed);
  EXPECT_TRUE(saw_dp);
  EXPECT_TRUE(saw_search);
  EXPECT_TRUE(saw_whole);
}

}  // namespace
}  // namespace mrs
