#include "optimizer/plan_enumerator.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "plan/query_graph.h"
#include "test_util.h"

namespace mrs {
namespace {

QueryGraph Chain(int n) {
  QueryGraph g(n);
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(g.AddJoin(i, i + 1).ok());
  }
  return g;
}

QueryGraph Star(int n) {
  QueryGraph g(n);
  for (int i = 1; i < n; ++i) {
    EXPECT_TRUE(g.AddJoin(0, i).ok());
  }
  return g;
}

/// Fills the whole memo (no pruning) and returns the number of complete
/// plans the root slices span: sum over slices of |outer| * |inner| * 2
/// build orientations.
uint64_t FillAndCountPlans(PlanEnumerator* e) {
  for (int size = 2; size < e->num_relations(); ++size) {
    for (int id : e->SubsetsOfSize(size)) {
      e->GenerateCandidates(id, [](const PlanEnumerator::Candidate&) {
        return true;
      });
    }
  }
  uint64_t plans = 0;
  for (const auto& slice : e->root_slices()) {
    plans += 2ull *
             e->candidates(slice.outer_subset).size() *
             e->candidates(slice.inner_subset).size();
  }
  return plans;
}

TEST(PlanEnumeratorTest, RejectsDisconnectedGraph) {
  QueryGraph g(3);
  ASSERT_TRUE(g.AddJoin(0, 1).ok());  // relation 2 unreachable
  EXPECT_FALSE(PlanEnumerator::Create(g).ok());
}

TEST(PlanEnumeratorTest, RejectsOversizedGraph) {
  EXPECT_FALSE(PlanEnumerator::Create(Chain(PlanEnumerator::kMaxRelations + 1))
                   .ok());
}

TEST(PlanEnumeratorTest, SingleRelationMemoizesOnlyTheLeaf) {
  QueryGraph g(1);
  auto e = PlanEnumerator::Create(g);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e->num_subsets(), 1);
  EXPECT_EQ(e->subset_mask(0), 1ull);
  ASSERT_EQ(e->candidates(0).size(), 1u);
  EXPECT_EQ(e->candidates(0)[0].relation, 0);
  EXPECT_TRUE(e->root_slices().empty());
}

TEST(PlanEnumeratorTest, ChainSubsetsAreTheConnectedIntervals) {
  auto e = PlanEnumerator::Create(Chain(3));
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  // Proper connected subsets of 0-1-2: {0},{1},{2},{0,1},{1,2}.
  EXPECT_EQ(e->num_subsets(), 5);
  EXPECT_GE(e->SubsetId(0b011), 0);
  EXPECT_GE(e->SubsetId(0b110), 0);
  EXPECT_EQ(e->SubsetId(0b101), -1);  // disconnected
  EXPECT_EQ(e->SubsetId(0b111), -1);  // full set lives in the root slices
  // Root slices: {0}|{1,2} and {0,1}|{2}; {0,2} is not connected.
  ASSERT_EQ(e->root_slices().size(), 2u);
  EXPECT_EQ(e->subset_mask(e->root_slices()[0].outer_subset), 0b001ull);
  EXPECT_EQ(e->subset_mask(e->root_slices()[0].inner_subset), 0b110ull);
  EXPECT_EQ(e->subset_mask(e->root_slices()[1].outer_subset), 0b011ull);
  EXPECT_EQ(e->subset_mask(e->root_slices()[1].inner_subset), 0b100ull);
}

TEST(PlanEnumeratorTest, ChainPlanCountsMatchCatalan) {
  // A chain of n relations admits Catalan(n-1) cross-product-free tree
  // shapes, each with 2^(n-1) build orientations.
  const uint64_t expected[] = {0, 0, 2, 8, 40, 224, 1344};
  for (int n = 2; n <= 6; ++n) {
    auto e = PlanEnumerator::Create(Chain(n));
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    EXPECT_EQ(FillAndCountPlans(&e.value()), expected[n])
        << "chain of " << n;
  }
}

TEST(PlanEnumeratorTest, StarJoinsOnlyThroughTheHub) {
  auto e = PlanEnumerator::Create(Star(4));
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  // Connected subsets either contain the hub 0 or are single spokes:
  // 3 spokes + {0} + C(3,1)+C(3,2)+C(3,3) hub sets = 4 + 7 = 11, minus the
  // full set = 10.
  EXPECT_EQ(e->num_subsets(), 10);
  // Every root slice has the hub on the outer side by canonicalization.
  for (const auto& slice : e->root_slices()) {
    EXPECT_EQ(e->subset_mask(slice.outer_subset) & 1ull, 1ull);
  }
}

TEST(PlanEnumeratorTest, KeepFilterControlsTheMemo) {
  auto e = PlanEnumerator::Create(Chain(3));
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  const int id = e->SubsetId(0b011);
  ASSERT_GE(id, 0);
  auto counts = e->GenerateCandidates(
      id, [](const PlanEnumerator::Candidate&) { return false; });
  EXPECT_EQ(counts.generated, 2u);  // both orientations of {0} x {1}
  EXPECT_EQ(counts.kept, 0u);
  EXPECT_TRUE(e->candidates(id).empty());
}

TEST(PlanEnumeratorTest, BuildRootPlanMaterializesEveryRelationOnce) {
  auto catalog = testing_util::MakeCatalog({4000, 2000, 8000, 1000});
  auto e = PlanEnumerator::Create(Chain(4));
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  FillAndCountPlans(&e.value());
  const auto& slice = e->root_slices().front();
  auto plan = e->BuildRootPlan(catalog.get(),
                               {slice.outer_subset, 0},
                               {slice.inner_subset, 0});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // 4 leaves + 3 joins.
  EXPECT_EQ(plan->num_nodes(), 7);
}

}  // namespace
}  // namespace mrs
