#include "optimizer/makespan_cost.h"

#include <gtest/gtest.h>

#include "core/list_schedule.h"
#include "core/tree_schedule.h"
#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::PlanFixture;

TEST(MakespanCostTest, TreeEngineMatchesTreeScheduleBitExactly) {
  PlanFixture fx = BushyFourWayFixture();
  const MachineConfig machine;
  const OverlapUsageModel usage(0.5);
  auto fn = MakespanCostFn::Create(fx.catalog.get(), CostParams{}, machine,
                                   usage, MakespanCostOptions{});
  ASSERT_TRUE(fn.ok()) << fn.status().ToString();
  auto prepared = fn->Prepare(*fx.plan);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto got = fn->Makespan(*prepared);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  auto direct = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             machine, usage, TreeScheduleOptions{});
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(*got, direct->response_time);
}

TEST(MakespanCostTest, ListEngineMatchesListScheduleBitExactly) {
  PlanFixture fx = BushyFourWayFixture();
  const MachineConfig machine;
  const OverlapUsageModel usage(0.5);
  MakespanCostOptions options;
  options.engine = OptimizerEngine::kList;
  auto fn = MakespanCostFn::Create(fx.catalog.get(), CostParams{}, machine,
                                   usage, options);
  ASSERT_TRUE(fn.ok()) << fn.status().ToString();
  auto prepared = fn->Prepare(*fx.plan);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto got = fn->Makespan(*prepared);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  auto direct = ListSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             machine, usage, ListScheduleOptions{});
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(*got, direct->makespan);
}

TEST(MakespanCostTest, LowerBoundNeverExceedsTheMakespan) {
  PlanFixture fx = BushyFourWayFixture();
  const MachineConfig machine;
  const OverlapUsageModel usage(0.5);
  for (const OptimizerEngine engine :
       {OptimizerEngine::kTree, OptimizerEngine::kList}) {
    MakespanCostOptions options;
    options.engine = engine;
    auto fn = MakespanCostFn::Create(fx.catalog.get(), CostParams{}, machine,
                                     usage, options);
    ASSERT_TRUE(fn.ok()) << fn.status().ToString();
    auto prepared = fn->Prepare(*fx.plan);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    auto lb = fn->LowerBound(*prepared, 0b1111);  // all four relations
    auto ms = fn->Makespan(*prepared);
    ASSERT_TRUE(lb.ok()) << lb.status().ToString();
    ASSERT_TRUE(ms.ok()) << ms.status().ToString();
    EXPECT_LE(*lb, *ms);
    EXPECT_GT(*lb, 0.0);
  }
}

TEST(MakespanCostTest, UncoveredScansRaiseThePartialPlanBound) {
  // A two-relation subplan of a four-relation query: folding the two
  // uncovered scans into the work bound can only raise the bound.
  auto catalog = testing_util::MakeCatalog({4000, 2000, 8000, 1000});
  PlanTree sub(catalog.get());
  auto l0 = sub.AddLeaf(0);
  auto l1 = sub.AddLeaf(1);
  ASSERT_TRUE(l0.ok() && l1.ok());
  ASSERT_TRUE(sub.AddJoin(*l0, *l1).ok());
  ASSERT_TRUE(sub.Finalize().ok());

  const MachineConfig machine;
  const OverlapUsageModel usage(0.5);
  auto fn = MakespanCostFn::Create(catalog.get(), CostParams{}, machine, usage,
                                   MakespanCostOptions{});
  ASSERT_TRUE(fn.ok()) << fn.status().ToString();
  auto prepared = fn->Prepare(sub);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto partial = fn->LowerBound(*prepared, 0b0011);
  auto covered = fn->LowerBound(*prepared, 0b1111);
  ASSERT_TRUE(partial.ok() && covered.ok());
  EXPECT_GE(*partial, *covered);
}

TEST(MakespanCostTest, RejectsUndersizedMachine) {
  auto catalog = testing_util::MakeCatalog({1000});
  MachineConfig machine;
  machine.dims = 2;  // needs 2 + num_disks = 3
  const OverlapUsageModel usage(0.5);
  EXPECT_FALSE(MakespanCostFn::Create(catalog.get(), CostParams{}, machine,
                                      usage, MakespanCostOptions{})
                   .ok());
}

}  // namespace
}  // namespace mrs
