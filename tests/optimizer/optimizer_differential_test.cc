// Slow differential suite for the scheduler-in-the-loop join-order
// optimizer (see src/optimizer/optimizer.h):
//
//   * pruned search vs the exhaustive baseline: bit-equal makespans and
//     identical winning plan ids over random tree queries with J <= 6;
//   * byte-identical Explain() output across 1/2/8 search threads;
//   * pruning soundness over random *cyclic* connected graphs (extra
//     edges added to a random tree);
//   * the winner never loses to the generator's own random bushy plan
//     priced by the same cost function.
//
// Every random draw derives from MRS_FUZZ_SEED (see
// testing_util::FuzzSeed), so a failure replays exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "optimizer/makespan_cost.h"
#include "optimizer/optimizer.h"
#include "plan/query_graph.h"
#include "test_util.h"
#include "workload/generator.h"

namespace mrs {
namespace {

GeneratedQuery MakeQuery(int joins, Rng* rng) {
  WorkloadParams params;
  params.num_joins = joins;
  auto q = GenerateQuery(params, rng);
  if (!q.ok()) std::abort();
  return std::move(q).value();
}

TEST(OptimizerDifferentialTest, PrunedMatchesExhaustiveOnRandomTreeQueries) {
  Rng rng(testing_util::FuzzSeed(0x5eed07));
  const MachineConfig machine;
  const OverlapUsageModel usage(0.5);
  for (int trial = 0; trial < 12; ++trial) {
    const int joins = 2 + trial % 5;  // J in 2..6
    GeneratedQuery q = MakeQuery(joins, &rng);
    auto pruned = OptimizeJoinOrder(*q.catalog, *q.graph, CostParams{},
                                    machine, usage, OptimizerOptions{});
    auto full = ExhaustivePlanSearch(*q.catalog, *q.graph, CostParams{},
                                     machine, usage, OptimizerOptions{});
    ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    EXPECT_EQ(pruned->makespan, full->makespan)
        << "trial " << trial << ": " << q.graph->ToString();
    EXPECT_EQ(pruned->plan_id, full->plan_id)
        << "trial " << trial << ": " << q.graph->ToString();
    EXPECT_EQ(pruned->plan->ToString(), full->plan->ToString());
  }
}

TEST(OptimizerDifferentialTest, ThreadCountsProduceByteIdenticalReports) {
  Rng rng(testing_util::FuzzSeed(0xdecaf));
  const MachineConfig machine;
  const OverlapUsageModel usage(0.5);
  for (int trial = 0; trial < 4; ++trial) {
    GeneratedQuery q = MakeQuery(6, &rng);
    std::string reference;
    for (const int threads : {1, 2, 8}) {
      OptimizerOptions options;
      options.num_threads = threads;
      auto result = OptimizeJoinOrder(*q.catalog, *q.graph, CostParams{},
                                      machine, usage, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (reference.empty()) {
        reference = result->Explain();
      } else {
        EXPECT_EQ(result->Explain(), reference)
            << "trial " << trial << " threads " << threads;
      }
    }
  }
}

TEST(OptimizerDifferentialTest, PruningIsSoundOnRandomCyclicGraphs) {
  Rng rng(testing_util::FuzzSeed(0xc1c1e));
  const MachineConfig machine;
  const OverlapUsageModel usage(0.5);
  for (int trial = 0; trial < 8; ++trial) {
    const int joins = 3 + trial % 3;  // J in 3..5
    GeneratedQuery q = MakeQuery(joins, &rng);
    // Densify: add up to two random extra edges, turning the tree into a
    // cyclic (still connected) join graph.
    const int n = q.graph->num_relations();
    for (int extra = 0; extra < 2; ++extra) {
      const int a = static_cast<int>(rng.UniformInt(0, n - 1));
      const int b = static_cast<int>(rng.UniformInt(0, n - 1));
      if (a != b) (void)q.graph->AddJoin(a, b);  // duplicates rejected
    }
    auto pruned = OptimizeJoinOrder(*q.catalog, *q.graph, CostParams{},
                                    machine, usage, OptimizerOptions{});
    auto full = ExhaustivePlanSearch(*q.catalog, *q.graph, CostParams{},
                                     machine, usage, OptimizerOptions{});
    ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    EXPECT_EQ(pruned->makespan, full->makespan)
        << "trial " << trial << ": " << q.graph->ToString();
    EXPECT_EQ(pruned->plan_id, full->plan_id);
    EXPECT_LE(pruned->stats.plans_scheduled, full->stats.plans_scheduled);
  }
}

TEST(OptimizerDifferentialTest, WinnerNeverLosesToTheRandomPlan) {
  Rng rng(testing_util::FuzzSeed(0xbea7));
  const MachineConfig machine;
  const OverlapUsageModel usage(0.5);
  for (int trial = 0; trial < 10; ++trial) {
    const int joins = 2 + trial % 5;
    GeneratedQuery q = MakeQuery(joins, &rng);
    auto result = OptimizeJoinOrder(*q.catalog, *q.graph, CostParams{},
                                    machine, usage, OptimizerOptions{});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Price the generator's random bushy plan with the same cost function.
    auto fn = MakespanCostFn::Create(q.catalog.get(), CostParams{}, machine,
                                     usage, MakespanCostOptions{});
    ASSERT_TRUE(fn.ok()) << fn.status().ToString();
    auto prepared = fn->Prepare(*q.plan);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    auto random_ms = fn->Makespan(*prepared);
    ASSERT_TRUE(random_ms.ok()) << random_ms.status().ToString();
    EXPECT_LE(result->makespan, *random_ms)
        << "trial " << trial << ": " << q.graph->ToString();
  }
}

TEST(OptimizerDifferentialTest, ListEnginePrunedMatchesExhaustive) {
  Rng rng(testing_util::FuzzSeed(0x115f));
  const MachineConfig machine;
  const OverlapUsageModel usage(0.5);
  for (int trial = 0; trial < 6; ++trial) {
    GeneratedQuery q = MakeQuery(2 + trial % 4, &rng);
    OptimizerOptions options;
    options.engine = OptimizerEngine::kList;
    auto pruned = OptimizeJoinOrder(*q.catalog, *q.graph, CostParams{},
                                    machine, usage, options);
    auto full = ExhaustivePlanSearch(*q.catalog, *q.graph, CostParams{},
                                     machine, usage, options);
    ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    EXPECT_EQ(pruned->makespan, full->makespan)
        << "trial " << trial << ": " << q.graph->ToString();
    EXPECT_EQ(pruned->plan_id, full->plan_id);
  }
}

}  // namespace
}  // namespace mrs
