// Golden-file tests: every human- or machine-readable rendering the repo
// ships (ExplainSchedule::ToString, the ASCII/SVG gantt charts, the
// schedule JSON/CSV exports, and the versioned trace report) is pinned
// byte-for-byte against a checked-in corpus under tests/golden/. The
// inputs are fully deterministic (fixed fixtures, CountingClock traces,
// hand-fed metrics), so any byte change is a deliberate format change —
// regenerate with
//
//   mrs_golden_tests --update-golden        (or MRS_UPDATE_GOLDEN=1)
//
// and review the corpus diff like any other code change.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/list_schedule.h"
#include "cost/parallelize_cache.h"
#include "exec/calibrate.h"
#include "exec/exec_backend.h"
#include "exec/execute_backend.h"
#include "exec/explain.h"
#include "exec/gantt.h"
#include "exec/trace.h"
#include "io/schedule_export.h"
#include "io/trace_export.h"
#include "optimizer/optimizer.h"
#include "plan/query_graph.h"
#include "test_util.h"

namespace mrs {

// Set from main (not in the anonymous namespace so main can reach it).
bool g_update_golden = false;

namespace {

using testing_util::BushyFourWayFixture;
using testing_util::PipelinedChainFixture;
using testing_util::PlanFixture;

std::string GoldenPath(const std::string& name) {
  return std::string(MRS_GOLDEN_DIR) + "/" + name;
}

/// Byte-exact comparison against tests/golden/<name>; in update mode the
/// file is (re)written instead. Failure messages point at the first
/// differing line so format drift is easy to review.
void CompareOrUpdate(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_golden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    ASSERT_TRUE(out.good()) << "short write to " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with mrs_golden_tests "
                            "--update-golden";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (expected == actual) return;

  // Locate the first differing line for the failure message.
  std::istringstream want(expected);
  std::istringstream got(actual);
  std::string want_line;
  std::string got_line;
  int line = 0;
  while (true) {
    ++line;
    const bool more_want = static_cast<bool>(std::getline(want, want_line));
    const bool more_got = static_cast<bool>(std::getline(got, got_line));
    if (!more_want && !more_got) break;
    if (!more_want || !more_got || want_line != got_line) {
      FAIL() << name << " drifted at line " << line << "\n  golden: "
             << (more_want ? want_line : "<eof>") << "\n  actual: "
             << (more_got ? got_line : "<eof>")
             << "\nif intended, regenerate with --update-golden";
    }
  }
  FAIL() << name << " differs only in line endings or trailing bytes";
}

/// The corpus driver: one deterministic schedule per fixture/policy pair.
struct GoldenSchedule {
  PlanFixture fx;
  MachineConfig machine;
  TreeScheduleResult result;
};

GoldenSchedule MakeGoldenSchedule(PlanFixture fx,
                                  ParallelizationPolicy policy,
                                  TraceSink* trace = nullptr,
                                  ParallelizeCache* cache = nullptr) {
  GoldenSchedule g;
  g.fx = std::move(fx);
  OverlapUsageModel usage(0.5);
  TreeScheduleOptions options;
  options.policy = policy;
  options.trace = trace;
  options.cache = cache;
  auto result = TreeSchedule(g.fx.op_tree, g.fx.task_tree, g.fx.costs,
                             CostParams{}, g.machine, usage, options);
  if (!result.ok()) std::abort();
  g.result = std::move(result).value();
  return g;
}

TEST(GoldenTest, ExplainBushy) {
  GoldenSchedule g = MakeGoldenSchedule(BushyFourWayFixture(),
                                        ParallelizationPolicy::kCoarseGrain);
  CompareOrUpdate("explain_bushy.txt",
                  ExplainSchedule(g.result).ToString(g.machine));
}

TEST(GoldenTest, ExplainMalleableChain) {
  GoldenSchedule g = MakeGoldenSchedule(PipelinedChainFixture(6),
                                        ParallelizationPolicy::kMalleable);
  CompareOrUpdate("explain_malleable_chain.txt",
                  ExplainSchedule(g.result).ToString(g.machine));
}

TEST(GoldenTest, GanttBushy) {
  GoldenSchedule g = MakeGoldenSchedule(BushyFourWayFixture(),
                                        ParallelizationPolicy::kCoarseGrain);
  CompareOrUpdate("gantt_bushy.txt", RenderTreeGantt(g.result));
}

TEST(GoldenTest, GanttPhaseBushy) {
  GoldenSchedule g = MakeGoldenSchedule(BushyFourWayFixture(),
                                        ParallelizationPolicy::kCoarseGrain);
  CompareOrUpdate("gantt_phase0_bushy.txt",
                  RenderPhaseGantt(g.result.phases[0].schedule));
}

TEST(GoldenTest, GanttSvgBushy) {
  GoldenSchedule g = MakeGoldenSchedule(BushyFourWayFixture(),
                                        ParallelizationPolicy::kCoarseGrain);
  CompareOrUpdate("gantt_bushy.svg", RenderTreeGanttSvg(g.result));
}

TEST(GoldenTest, ScheduleJsonBushy) {
  GoldenSchedule g = MakeGoldenSchedule(BushyFourWayFixture(),
                                        ParallelizationPolicy::kCoarseGrain);
  CompareOrUpdate("schedule_bushy.json", TreeScheduleToJson(g.result));
}

TEST(GoldenTest, ScheduleCsvBushy) {
  GoldenSchedule g = MakeGoldenSchedule(BushyFourWayFixture(),
                                        ParallelizationPolicy::kCoarseGrain);
  CompareOrUpdate("schedule_bushy.csv", TreeScheduleToCsv(g.result));
}

/// The barrier-free engine's renderings, pinned on the same bushy fixture
/// and knobs as the TREESCHEDULE goldens so the two engines' outputs can
/// be diffed side by side.
struct GoldenListSchedule {
  PlanFixture fx;
  MachineConfig machine;
  ListScheduleResult result;
};

GoldenListSchedule MakeGoldenListSchedule(TraceSink* trace = nullptr) {
  GoldenListSchedule g;
  g.fx = BushyFourWayFixture();
  OverlapUsageModel usage(0.5);
  ListScheduleOptions options;
  options.trace = trace;
  auto result = ListSchedule(g.fx.op_tree, g.fx.task_tree, g.fx.costs,
                             CostParams{}, g.machine, usage, options);
  if (!result.ok()) std::abort();
  g.result = std::move(result).value();
  return g;
}

TEST(GoldenTest, ExplainListBushy) {
  GoldenListSchedule g = MakeGoldenListSchedule();
  CompareOrUpdate("explain_list_bushy.txt",
                  ExplainListSchedule(g.result).ToString(g.machine));
}

TEST(GoldenTest, GanttListBushy) {
  GoldenListSchedule g = MakeGoldenListSchedule();
  CompareOrUpdate("gantt_list_bushy.txt", RenderListGantt(g.result));
}

TEST(GoldenTest, GanttListSvgBushy) {
  GoldenListSchedule g = MakeGoldenListSchedule();
  CompareOrUpdate("gantt_list_bushy.svg", RenderListGanttSvg(g.result));
}

TEST(GoldenTest, ScheduleListJsonBushy) {
  GoldenListSchedule g = MakeGoldenListSchedule();
  CompareOrUpdate("schedule_list_bushy.json", ListScheduleToJson(g.result));
}

TEST(GoldenTest, ScheduleListCsvBushy) {
  GoldenListSchedule g = MakeGoldenListSchedule();
  CompareOrUpdate("schedule_list_bushy.csv", ListScheduleToCsv(g.result));
}

TEST(GoldenTest, TraceListBushy) {
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  trace.set_label("golden-query");
  GoldenListSchedule g = MakeGoldenListSchedule(&trace);
  (void)g;
  CompareOrUpdate("trace_list_bushy.txt", trace.ToString());
}

TEST(GoldenTest, TraceReportList) {
  MetricsRegistry registry;
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  trace.set_label("golden-query");
  GoldenListSchedule g = MakeGoldenListSchedule(&trace);
  (void)g;
  CompareOrUpdate("trace_report_list.json",
                  ExportTraceReport({&trace}, registry.Snapshot()));
}

/// Pins the versioned trace-report schema end to end: a CountingClock
/// trace through the full TREESCHEDULE pipeline (with a cache, so the
/// per-stage hit/miss attrs appear) plus a hand-fed metrics registry.
TEST(GoldenTest, TraceReportSchema) {
  MetricsRegistry registry;
  ParallelizeCache cache(CostParams{}, 0.5, 0.7, MachineConfig{}.num_sites,
                         &registry);
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  trace.set_label("golden-query");
  GoldenSchedule g =
      MakeGoldenSchedule(BushyFourWayFixture(),
                         ParallelizationPolicy::kCoarseGrain, &trace, &cache);
  (void)g;
  registry.GetGauge("example.load")->Set(0.25);
  Histogram* hist = registry.GetHistogram("example.latency_ms");
  for (int i = 1; i <= 4; ++i) hist->Record(0.5 * i);
  CompareOrUpdate("trace_report.json",
                  ExportTraceReport({&trace}, registry.Snapshot()));
}

/// The pipelined engine's renderings, pinned on a 4-join chain — the plan
/// shape intra-task pipelining exists for. The fixture also anchors the
/// dominance acceptance: pipelined strictly beats the task-wave engine
/// here (PipelinedStrictlyImprovesOnChain), so any change that erodes the
/// win shows up as a golden diff plus a failed strict inequality.
GoldenListSchedule MakeGoldenPipelinedSchedule(TraceSink* trace = nullptr) {
  GoldenListSchedule g;
  // 500-tuple relations: small enough that every stage runs below its
  // task's bottleneck rate, so rate matching has room to shed clones.
  g.fx = PipelinedChainFixture(4, /*tuples=*/500);
  OverlapUsageModel usage(0.5);
  ListScheduleOptions options;
  options.trace = trace;
  options.pipeline = true;
  auto result = ListSchedule(g.fx.op_tree, g.fx.task_tree, g.fx.costs,
                             CostParams{}, g.machine, usage, options);
  if (!result.ok()) std::abort();
  g.result = std::move(result).value();
  return g;
}

TEST(GoldenTest, ExplainPipelinedChain) {
  GoldenListSchedule g = MakeGoldenPipelinedSchedule();
  CompareOrUpdate("explain_pipelined_chain.txt",
                  ExplainListSchedule(g.result).ToString(g.machine));
}

TEST(GoldenTest, GanttPipelinedChain) {
  GoldenListSchedule g = MakeGoldenPipelinedSchedule();
  CompareOrUpdate("gantt_pipelined_chain.txt", RenderListGantt(g.result));
}

TEST(GoldenTest, SchedulePipelinedJsonChain) {
  GoldenListSchedule g = MakeGoldenPipelinedSchedule();
  CompareOrUpdate("schedule_pipelined_chain.json",
                  ListScheduleToJson(g.result));
}

TEST(GoldenTest, TracePipelinedChain) {
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  trace.set_label("golden-query");
  GoldenListSchedule g = MakeGoldenPipelinedSchedule(&trace);
  (void)g;
  CompareOrUpdate("trace_pipelined_chain.txt", trace.ToString());
}

TEST(GoldenTest, PipelinedStrictlyImprovesOnChain) {
  // The acceptance pin: with the guard on, pipelined <= list everywhere,
  // and on this plan the rate-matched co-residency is a strict win.
  GoldenListSchedule piped = MakeGoldenPipelinedSchedule();
  PlanFixture fx = PipelinedChainFixture(4, /*tuples=*/500);
  OverlapUsageModel usage(0.5);
  auto plain = ListSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                            piped.machine, usage, ListScheduleOptions{});
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_TRUE(piped.result.pipelined);
  EXPECT_FALSE(piped.result.used_list_fallback);
  EXPECT_LT(piped.result.makespan, plain->makespan);
}

/// The execute backend's knobs behind the execution goldens: the
/// deterministic meter makes "measured" times a pure function of row
/// counts, so the explain rendering and the calibration report are
/// byte-stable on every machine.
ExecuteOptions GoldenExecuteOptions() {
  ExecuteOptions options;
  options.meter = ExecMeter::kDeterministic;
  options.threads = 2;
  return options;
}

TEST(GoldenTest, ExecuteReportBushy) {
  GoldenSchedule g = MakeGoldenSchedule(BushyFourWayFixture(),
                                        ParallelizationPolicy::kCoarseGrain);
  const std::vector<ExecOpSpec> specs = ExecOpSpecsFromTree(g.fx.op_tree);
  ExecuteBackend backend(GoldenExecuteOptions());
  auto runs = backend.RunTree(g.result, specs);
  if (!runs.ok()) std::abort();
  std::string text;
  for (const ExecutionResult& run : *runs) {
    text += ExplainExecution(run, g.machine);
  }
  CompareOrUpdate("execute_bushy.txt", text);
}

TEST(GoldenTest, ExecutePipelinedReportChain) {
  // The pipelined replay: same schedule, pipeline_edges on, deterministic
  // meter — the streamed row counts and digests are pinned byte-for-byte.
  GoldenListSchedule g = MakeGoldenPipelinedSchedule();
  const std::vector<ExecOpSpec> specs = ExecOpSpecsFromTree(g.fx.op_tree);
  ExecuteOptions options = GoldenExecuteOptions();
  options.pipeline_edges = true;
  ExecuteBackend backend(options);
  auto run = backend.Run(g.result.schedule, specs);
  if (!run.ok()) std::abort();
  CompareOrUpdate("execute_pipelined_chain.txt",
                  ExplainExecution(*run, g.machine));
}

TEST(GoldenTest, CalibrationReportBushy) {
  GoldenSchedule g = MakeGoldenSchedule(BushyFourWayFixture(),
                                        ParallelizationPolicy::kCoarseGrain);
  const std::vector<ExecOpSpec> specs = ExecOpSpecsFromTree(g.fx.op_tree);
  Calibrator calibrator(g.machine.dims, OverlapUsageModel(0.5),
                        GoldenExecuteOptions());
  if (!calibrator.AddTreePlan("bushy", g.result, specs).ok()) std::abort();
  GoldenListSchedule list = MakeGoldenListSchedule();
  const std::vector<ExecOpSpec> list_specs =
      ExecOpSpecsFromTree(list.fx.op_tree);
  if (!calibrator.AddSchedule("bushy-list", list.result.schedule, list_specs)
           .ok()) {
    std::abort();
  }
  CompareOrUpdate("calibration_bushy.json", calibrator.ReportJson());
}

/// The optimizer explain report, pinned for both pricing engines on a
/// fixed 4-join chain whose sizes spread two orders of magnitude (so the
/// winner is a non-textual bushy order). Explain() carries no timings,
/// thread counts, or cache counters, so the bytes are stable across
/// machines and --threads values.
std::string OptimizerExplain(OptimizerEngine engine) {
  Catalog catalog;
  const int64_t sizes[] = {25, 620, 2400, 96000, 31000};
  for (int i = 0; i < 5; ++i) {
    Relation r;
    r.name = "R" + std::to_string(i);
    r.num_tuples = sizes[i];
    if (!catalog.AddRelation(std::move(r)).ok()) std::abort();
  }
  QueryGraph graph(5);
  for (int i = 0; i < 4; ++i) {
    if (!graph.AddJoin(i, i + 1).ok()) std::abort();
  }
  OptimizerOptions options;
  options.engine = engine;
  MetricsRegistry metrics;
  options.metrics = &metrics;
  auto result = OptimizeJoinOrder(catalog, graph, CostParams{},
                                  MachineConfig{}, OverlapUsageModel(0.5),
                                  options);
  if (!result.ok()) std::abort();
  return result->Explain();
}

TEST(GoldenTest, OptimizerExplainChainTree) {
  CompareOrUpdate("optimizer_explain_chain_tree.txt",
                  OptimizerExplain(OptimizerEngine::kTree));
}

TEST(GoldenTest, OptimizerExplainChainList) {
  CompareOrUpdate("optimizer_explain_chain_list.txt",
                  OptimizerExplain(OptimizerEngine::kList));
}

TEST(GoldenTest, TraceToStringBushy) {
  ScheduleTrace trace(ScheduleTrace::CountingClock());
  trace.set_label("golden-query");
  GoldenSchedule g = MakeGoldenSchedule(
      BushyFourWayFixture(), ParallelizationPolicy::kCoarseGrain, &trace);
  (void)g;
  CompareOrUpdate("trace_bushy.txt", trace.ToString());
}

}  // namespace
}  // namespace mrs

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      mrs::g_update_golden = true;
    }
  }
  const char* env = std::getenv("MRS_UPDATE_GOLDEN");
  if (env != nullptr && *env != '\0' && std::string(env) != "0") {
    mrs::g_update_golden = true;
  }
  return RUN_ALL_TESTS();
}
